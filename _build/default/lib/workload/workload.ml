module Drbg = Worm_crypto.Drbg
open Worm_core

let default_block_size = 64 * 1024

let record rng ~bytes =
  let rec split acc remaining =
    if remaining <= 0 then List.rev acc
    else begin
      let n = min remaining default_block_size in
      split (Drbg.generate rng n :: acc) (remaining - n)
    end
  in
  if bytes = 0 then [ "" ] else split [] bytes

let figure1_sizes = [ 1024; 2048; 4096; 8192; 16384; 32768; 65536; 131072; 262144 ]

type op = Write of { blocks : string list; policy : Policy.t } | Read of int

let write_burst rng ~records ~record_bytes ~policy =
  List.init records (fun _ -> Write { blocks = record rng ~bytes:record_bytes; policy })

let mixed_trace rng ~ops ~write_fraction ~record_bytes ~policy =
  if write_fraction < 0. || write_fraction > 1. then invalid_arg "Workload.mixed_trace: bad fraction";
  let threshold = int_of_float (write_fraction *. 1000.) in
  List.init ops (fun _ ->
      if Drbg.int_below rng 1000 < threshold then Write { blocks = record rng ~bytes:record_bytes; policy }
      else Read (Drbg.int_below rng max_int))

let all_regulations =
  Policy.[ Sec17a4; Hipaa; Sox; Dod5015_2; Ferpa; Glba; Fda21cfr11 ]

let retention_mix rng ~now:_ ~n =
  List.init n (fun _ ->
      Policy.of_regulation (List.nth all_regulations (Drbg.int_below rng (List.length all_regulations))))

let short_retention_mix rng ~min_ns ~max_ns ~n =
  if Int64.compare max_ns min_ns < 0 then invalid_arg "Workload.short_retention_mix: empty range";
  let spread = Int64.to_int (Int64.sub max_ns min_ns) in
  List.init n (fun i ->
      let jitter = if spread = 0 then 0 else Drbg.int_below rng (spread + 1) in
      Policy.custom
        ~name:(Printf.sprintf "short-%d" i)
        ~retention_ns:(Int64.add min_ns (Int64.of_int jitter))
        ~shred_passes:1)
