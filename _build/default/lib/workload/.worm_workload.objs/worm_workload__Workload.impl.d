lib/workload/workload.ml: Int64 List Policy Printf Worm_core Worm_crypto
