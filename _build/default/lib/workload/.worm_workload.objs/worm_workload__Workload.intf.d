lib/workload/workload.mli: Worm_core Worm_crypto
