(** Workload generation for the evaluation harness.

    Deterministic (seeded) generators for the loads the paper's
    evaluation exercises: record-size sweeps (Figure 1), bursts followed
    by idle periods (§4.3), mixed read/write query loads (§4.1 "query
    loads expected to be often mostly read-only"), and retention-period
    mixes that produce out-of-order expirations (§4.2.1 multiple-window
    behavior). *)

val default_block_size : int
(** 64 KiB — records larger than this are split across blocks. *)

val record : Worm_crypto.Drbg.t -> bytes:int -> string list
(** Pseudorandom record payload split into blocks. *)

val figure1_sizes : int list
(** Record sizes swept in Figure 1: 1 KiB to 256 KiB, powers of two. *)

type op =
  | Write of { blocks : string list; policy : Worm_core.Policy.t }
  | Read of int  (** index into previously written records (modulo) *)

val write_burst : Worm_crypto.Drbg.t -> records:int -> record_bytes:int -> policy:Worm_core.Policy.t -> op list

val mixed_trace :
  Worm_crypto.Drbg.t ->
  ops:int ->
  write_fraction:float ->
  record_bytes:int ->
  policy:Worm_core.Policy.t ->
  op list
(** Reads address uniformly random previously written records. *)

val retention_mix : Worm_crypto.Drbg.t -> now:int64 -> n:int -> Worm_core.Policy.t list
(** [n] policies drawn across the named regulations, yielding expiry
    times far out of insertion order. *)

val short_retention_mix : Worm_crypto.Drbg.t -> min_ns:int64 -> max_ns:int64 -> n:int -> Worm_core.Policy.t list
(** Custom policies with uniform retention in [\[min_ns, max_ns\]] —
    for deletion/window experiments that must expire within a run. *)
