(** Virtual time for deterministic simulation.

    The paper's SCPU carries a battery-backed tamper-protected clock used
    to timestamp freshness-critical signatures (the [SN_current] bound)
    and to drive the Retention Monitor's wake-up alarms. One {!t} is
    shared by every component of a simulation run; only the simulation
    driver advances it. Nanosecond resolution in an [int64]. *)

type t

val create : ?start:int64 -> unit -> t
val now : t -> int64

val advance : t -> int64 -> unit
(** @raise Invalid_argument on a negative delta. *)

val advance_to : t -> int64 -> unit
(** Monotonic: earlier targets are ignored. *)

(** Unit helpers. *)

val ns_of_us : float -> int64
val ns_of_ms : float -> int64
val ns_of_sec : float -> int64
val ns_of_min : float -> int64
val ns_of_hours : float -> int64
val ns_of_days : float -> int64
val ns_of_years : float -> int64
val sec_of_ns : int64 -> float
val pp_duration : Format.formatter -> int64 -> unit
(** Human-readable rendering: picks ns/µs/ms/s/min/h/days. *)
