type t = { mutable now : int64 }

let create ?(start = 0L) () = { now = start }
let now t = t.now

let advance t delta =
  if Int64.compare delta 0L < 0 then invalid_arg "Clock.advance: negative delta";
  t.now <- Int64.add t.now delta

let advance_to t target = if Int64.compare target t.now > 0 then t.now <- target

let ns_of_sec s = Int64.of_float (s *. 1e9)
let ns_of_us us = ns_of_sec (us *. 1e-6)
let ns_of_ms ms = ns_of_sec (ms *. 1e-3)
let ns_of_min m = ns_of_sec (m *. 60.)
let ns_of_hours h = ns_of_sec (h *. 3600.)
let ns_of_days d = ns_of_hours (d *. 24.)
let ns_of_years y = ns_of_days (y *. 365.25)
let sec_of_ns ns = Int64.to_float ns /. 1e9

let pp_duration fmt ns =
  let s = sec_of_ns ns in
  if s < 1e-6 then Format.fprintf fmt "%Ldns" ns
  else if s < 1e-3 then Format.fprintf fmt "%.1fus" (s *. 1e6)
  else if s < 1. then Format.fprintf fmt "%.2fms" (s *. 1e3)
  else if s < 120. then Format.fprintf fmt "%.2fs" s
  else if s < 7200. then Format.fprintf fmt "%.1fmin" (s /. 60.)
  else if s < 48. *. 3600. then Format.fprintf fmt "%.1fh" (s /. 3600.)
  else Format.fprintf fmt "%.1fdays" (s /. 86400.)
