lib/simclock/clock.mli: Format
