lib/simclock/clock.ml: Format Int64
