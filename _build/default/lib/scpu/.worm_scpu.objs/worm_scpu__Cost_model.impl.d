lib/scpu/cost_model.ml: Int64
