lib/scpu/device.ml: Cert Cost_model Drbg Hmac Int64 Printf Rsa Sha256 String Worm_crypto Worm_simclock
