lib/scpu/cost_model.mli:
