lib/scpu/device.mli: Cost_model Worm_crypto Worm_simclock
