(** File-system primitives over record-level WORM — the future work the
    paper closes with ("explore traditional file system primitives
    layered on top of block-level WORM"), and the deployment §4.1
    anticipates ("records being files, VRDs acting effectively as file
    descriptors").

    Files are write-once per version: writing an existing path appends a
    new immutable version backed by a fresh WORM record. Each version's
    record carries a header block binding (path, version, previous
    version's serial number, length) under the SCPU's datasig, so a
    client can verify not just the bytes but that they are {e the} bytes
    for the path and version requested — the host-side name index is
    untrusted plumbing, like the VRDT.

    Retention, litigation holds, deletion proofs, and migration all
    apply per version through the underlying store. *)

type t

val create : Worm_core.Worm.t -> t
val store : t -> Worm_core.Worm.t

type version_info = { version : int; sn : Worm_core.Serial.t; length : int }

val write_file :
  ?witness:Worm_core.Firmware.witness_mode ->
  t ->
  policy:Worm_core.Policy.t ->
  path:string ->
  string ->
  version_info
(** Append a new version of [path] (version 1 if the path is new).
    @raise Invalid_argument on an empty or ['\n']-containing path. *)

val versions : t -> path:string -> version_info list
(** All versions the index knows of, oldest first (expired versions are
    pruned by {!sync_index}). *)

val stat : t -> path:string -> version_info option
(** Latest version. *)

val list_files : t -> string list
(** Paths with at least one indexed version, sorted. *)

val list_under : t -> prefix:string -> string list
(** Paths under a directory prefix (string-prefix match), sorted. *)

val total_bytes : t -> int
(** Sum of latest-version lengths across all files. *)

type read_error =
  | No_such_file
  | No_such_version
  | Version_deleted  (** retention expired; deletion proof available via the store *)
  | Store_error of string

val read_file : t -> ?version:int -> string -> (version_info * string, read_error) result
(** Host-side read (latest version by default). For verified reads, use
    {!verified_read}. *)

val verified_read :
  t -> client:Worm_core.Client.t -> ?version:int -> string -> (version_info * string, string) result
(** End-to-end verified read: the record's witnesses must check out
    {e and} its signed header must name exactly this path and version.
    A host that serves a different (even validly witnessed) record for
    the path is caught here. *)

val sync_index : t -> int
(** Drop index entries whose records were deleted by the Retention
    Monitor. Returns the number pruned. *)

val save_index : t -> string
(** Serialize the name index (host state, like the VRDT): pair it with
    {!Worm_core.Worm.save_host_state} across host restarts. *)

val restore_index : Worm_core.Worm.t -> index:string -> (t, string) result
(** Rebuild a filesystem over a restored store. The index is untrusted;
    stale or forged entries surface through {!verified_read}'s header
    checks, never as wrong data. *)

(** {2 Header codec (exposed for verification and tests)} *)

type header = { h_path : string; h_version : int; h_prev : Worm_core.Serial.t option; h_length : int }

val decode_header : string -> (header, string) result
