(** Timing-safe byte-string comparison. *)

val equal : string -> string -> bool
(** [equal a b] compares without early exit on the first mismatch.
    Strings of different lengths compare unequal (length is not hidden). *)
