let equal a b =
  String.length a = String.length b
  &&
  let diff = ref 0 in
  for i = 0 to String.length a - 1 do
    diff := !diff lor (Char.code a.[i] lxor Char.code b.[i])
  done;
  !diff = 0
