(** Deterministic binary serialization.

    All multi-byte integers are big-endian. Variable-length fields are
    length-prefixed. Encodings are canonical: a value has exactly one
    encoding, so encodings can be hashed and signed directly. *)

type encoder
(** Mutable accumulator for an encoding in progress. *)

val encoder : unit -> encoder
val to_string : encoder -> string

val u8 : encoder -> int -> unit
(** @raise Invalid_argument if outside [0, 255]. *)

val u16 : encoder -> int -> unit
(** @raise Invalid_argument if outside [0, 65535]. *)

val u32 : encoder -> int -> unit
(** @raise Invalid_argument if outside [0, 2{^32}-1]. *)

val u64 : encoder -> int64 -> unit
val int_as_u64 : encoder -> int -> unit
(** Non-negative [int] written as u64. @raise Invalid_argument if negative. *)

val bool : encoder -> bool -> unit
val bytes : encoder -> string -> unit
(** Length-prefixed (u32) byte string. *)

val list : (encoder -> 'a -> unit) -> encoder -> 'a list -> unit
(** u32 count followed by the elements. *)

val option : (encoder -> 'a -> unit) -> encoder -> 'a option -> unit

type decoder
(** Read cursor over an encoded string. *)

exception Truncated
(** Raised when a read runs past the end of the input. *)

exception Malformed of string
(** Raised on structurally invalid input (e.g. a bad bool tag). *)

val decoder : string -> decoder
val remaining : decoder -> int

val read_u8 : decoder -> int
val read_u16 : decoder -> int
val read_u32 : decoder -> int
val read_u64 : decoder -> int64
val read_int_as_u64 : decoder -> int
val read_bool : decoder -> bool
val read_bytes : decoder -> string
val read_list : (decoder -> 'a) -> decoder -> 'a list
val read_option : (decoder -> 'a) -> decoder -> 'a option

val expect_end : decoder -> unit
(** @raise Malformed if input bytes remain. *)

val encode : (encoder -> 'a -> unit) -> 'a -> string
(** [encode enc v] runs [enc] on a fresh encoder and returns the bytes. *)

val decode : (decoder -> 'a) -> string -> ('a, string) result
(** [decode dec s] runs [dec], requiring all input to be consumed. *)
