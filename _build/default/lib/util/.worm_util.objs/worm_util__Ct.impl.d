lib/util/ct.ml: Char String
