lib/util/codec.mli:
