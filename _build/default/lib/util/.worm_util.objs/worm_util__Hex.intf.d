lib/util/hex.mli:
