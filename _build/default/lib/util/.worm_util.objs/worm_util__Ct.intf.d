lib/util/ct.mli:
