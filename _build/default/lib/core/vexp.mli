(** VEXP: the Retention Monitor's expiration schedule (§4.2.2).

    A list of serial numbers sorted on expiration time, held in the
    SCPU's {e bounded} secure storage. The RM daemon sleeps until the
    earliest entry falls due. When secure space runs out the latest
    expirations are shed — they are re-fed by a VRDT scan during idle
    periods (the paper's "updated during light load periods"), so
    timeliness of the {e soonest} deletions is never compromised. *)

type t

val create : capacity:int -> t
(** @raise Invalid_argument if [capacity <= 0]. *)

val capacity : t -> int
val length : t -> int
val is_full : t -> bool

type insert_result =
  | Inserted
  | Inserted_evicting of int64 * Serial.t
      (** accepted; the given later-expiring entry was shed to make room
          and must be re-fed later *)
  | Rejected_full  (** full, and this entry expires later than all held *)

val insert : t -> expiry:int64 -> Serial.t -> insert_result
(** Duplicate SNs replace the previous schedule entry. *)

val remove : t -> Serial.t -> bool
(** E.g. when a litigation hold suspends a deletion. *)

val mem : t -> Serial.t -> bool

val next_due : t -> (int64 * Serial.t) option
(** Earliest scheduled expiration — the RM's wake-up alarm time. *)

val pop_due : t -> now:int64 -> (int64 * Serial.t) list
(** Remove and return all entries with [expiry <= now], earliest first. *)

val to_list : t -> (int64 * Serial.t) list
(** Ascending by expiry; for inspection and idle-time reconciliation. *)
