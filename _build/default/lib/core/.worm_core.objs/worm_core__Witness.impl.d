lib/core/witness.ml: Format Printf Worm_crypto Worm_util
