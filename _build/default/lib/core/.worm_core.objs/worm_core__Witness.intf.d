lib/core/witness.mli: Format Worm_crypto Worm_util
