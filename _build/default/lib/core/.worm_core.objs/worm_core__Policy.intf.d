lib/core/policy.mli: Format Worm_util
