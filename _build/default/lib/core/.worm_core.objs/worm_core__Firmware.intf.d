lib/core/firmware.mli: Attr Serial Vrd Worm_crypto Worm_scpu Worm_util
