lib/core/journal.mli: Firmware Serial Worm_crypto
