lib/core/client.ml: Attr Cert Chained_hash Firmware Int64 List Option Proof Rsa Serial String Vrd Wire Witness Worm Worm_crypto Worm_simclock Worm_util
