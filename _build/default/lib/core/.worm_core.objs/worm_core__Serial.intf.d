lib/core/serial.mli: Format Map Set Worm_util
