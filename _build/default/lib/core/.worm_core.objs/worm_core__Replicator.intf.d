lib/core/replicator.mli: Client Firmware Policy Serial Worm
