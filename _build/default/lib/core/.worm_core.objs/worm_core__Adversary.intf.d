lib/core/adversary.mli: Firmware Proof Serial Worm
