lib/core/attr.mli: Format Policy Worm_util
