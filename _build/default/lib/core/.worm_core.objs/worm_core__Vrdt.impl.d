lib/core/vrdt.ml: Hashtbl List Serial String Vrd
