lib/core/proof.ml: Firmware List Printf Serial Vrd
