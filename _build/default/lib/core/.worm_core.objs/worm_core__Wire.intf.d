lib/core/wire.mli: Serial
