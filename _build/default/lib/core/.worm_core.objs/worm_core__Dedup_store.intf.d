lib/core/dedup_store.mli: Worm_simdisk
