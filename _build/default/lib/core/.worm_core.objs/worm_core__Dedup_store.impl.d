lib/core/dedup_store.ml: Hashtbl List String Worm_crypto Worm_simdisk
