lib/core/vrdt.mli: Serial Vrd
