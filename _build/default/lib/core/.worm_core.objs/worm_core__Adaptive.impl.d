lib/core/adaptive.ml: Firmware Int64 List Printf Worm_scpu Worm_simclock
