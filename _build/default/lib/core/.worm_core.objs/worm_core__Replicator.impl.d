lib/core/replicator.ml: Client Firmware Hashtbl List Proof Result Serial String Vrd Vrdt Worm Worm_crypto Worm_simdisk Worm_util
