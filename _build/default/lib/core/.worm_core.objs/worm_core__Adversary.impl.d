lib/core/adversary.ml: Attr Bytes Char Firmware List Option Policy Proof Serial String Vrd Vrdt Worm Worm_crypto Worm_simdisk
