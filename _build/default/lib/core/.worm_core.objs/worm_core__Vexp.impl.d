lib/core/vexp.ml: Hashtbl Int64 List Serial Set
