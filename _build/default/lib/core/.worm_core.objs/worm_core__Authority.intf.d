lib/core/authority.mli: Firmware Serial Worm Worm_crypto Worm_simclock
