lib/core/wire.ml: Serial Worm_util
