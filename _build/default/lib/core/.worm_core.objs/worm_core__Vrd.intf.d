lib/core/vrd.mli: Attr Format Serial Witness Worm_simdisk Worm_util
