lib/core/migration.mli: Client Serial Worm
