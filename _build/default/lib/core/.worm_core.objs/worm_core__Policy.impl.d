lib/core/policy.ml: Format Int64 Printf Worm_simclock Worm_util
