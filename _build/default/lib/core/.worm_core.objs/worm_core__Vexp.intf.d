lib/core/vexp.mli: Serial
