lib/core/attr.ml: Format Int64 Policy Printf Worm_simclock Worm_util
