lib/core/serial.ml: Format Int64 Map Printf Set Stdlib Worm_util
