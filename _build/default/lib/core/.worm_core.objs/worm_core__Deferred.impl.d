lib/core/deferred.ml: Hashtbl Int64 List Option Serial Set
