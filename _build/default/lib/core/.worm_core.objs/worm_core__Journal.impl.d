lib/core/journal.ml: Firmware List Printf Serial Worm_crypto Worm_scpu Worm_util
