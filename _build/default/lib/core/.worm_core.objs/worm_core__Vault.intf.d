lib/core/vault.mli: Firmware Serial
