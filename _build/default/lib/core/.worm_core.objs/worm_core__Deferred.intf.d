lib/core/deferred.mli: Serial
