lib/core/authority.ml: Attr Cert Firmware Int64 Rsa Vrd Vrdt Wire Worm Worm_crypto Worm_simclock
