lib/core/migration.ml: Client Firmware List Printf Proof Serial Vrd Worm Worm_crypto Worm_util
