lib/core/adaptive.mli: Firmware Worm_scpu
