lib/core/proof.mli: Firmware Serial Vrd
