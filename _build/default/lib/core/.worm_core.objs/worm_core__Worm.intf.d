lib/core/worm.mli: Attr Dedup_store Deferred Firmware Format Journal Policy Proof Serial Vault Vrdt Worm_crypto Worm_scpu Worm_simdisk
