lib/core/firmware.ml: Attr Cert Chained_hash Hashtbl Int64 List Logs Nat Option Policy Printf Result Rsa Serial String Vexp Vrd Wire Witness Worm_crypto Worm_scpu Worm_simclock Worm_util
