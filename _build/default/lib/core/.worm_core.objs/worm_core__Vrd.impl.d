lib/core/vrd.ml: Attr Format List Serial Witness Worm_simdisk Worm_util
