lib/core/client.mli: Firmware Proof Serial Vrd Worm Worm_crypto Worm_simclock
