lib/core/vault.ml: Bytes Char Firmware Int64 Serial String Worm_crypto Worm_scpu
