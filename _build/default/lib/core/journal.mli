(** Tamper-evident operation journal.

    §3 discusses audit trails for versioning file systems that commit
    version history to a {e trusted third party} — and rejects them for
    privacy, scalability and latency reasons. The SCPU makes the third
    party unnecessary: the host appends every WORM operation to a
    hash-chained journal and periodically asks the SCPU to {e anchor}
    the chain head with a signed, timestamped statement. An auditor who
    verifies the chain against the anchors gets an unforgeable operation
    history without any external service.

    Like the VRDT, the journal body is host-side and rewritable; the
    anchors are what make truncation or rewriting of anything {e before}
    the last anchor detectable. Operations after the last anchor are
    protected only once the next anchor lands (anchor cadence is the
    exposure window, exactly like the current-bound heartbeat). *)

type op =
  | Op_write of Serial.t
  | Op_delete of Serial.t
  | Op_hold of Serial.t * string  (** lit_id *)
  | Op_release of Serial.t * string
  | Op_strengthen of Serial.t
  | Op_window of Serial.t * Serial.t  (** collapsed range *)
  | Op_migration_out of string  (** target store id *)
  | Op_custom of string

val op_to_string : op -> string

type entry = { seq : int; timestamp : int64; op : op; chain : string  (** running hash after this entry *) }

type anchor = { upto_seq : int; chain : string; timestamp : int64; signature : string }

type t

val create : Firmware.t -> t
(** The journal anchors through this store's SCPU; entries bind its
    store id. *)

val append : t -> op -> entry
(** Timestamped with the SCPU clock reading at call time. *)

val length : t -> int
val entries : t -> entry list
(** Oldest first. *)

val anchor : t -> anchor
(** One strong signature over (store, seq, chain head, now). Typically
    on the maintenance heartbeat. *)

val anchors : t -> anchor list
(** Oldest first. *)

(** {2 Auditor side} *)

val verify_chain : entries:entry list -> bool
(** Recompute the hash chain; [true] iff internally consistent. *)

val verify_anchor : signing:Worm_crypto.Rsa.public -> store_id:string -> entries:entry list -> anchor -> bool
(** The anchor's signature must check out and its chain value must equal
    the recomputed chain at [upto_seq]. A journal whose prefix was
    rewritten or truncated fails against any honest anchor. *)

(** {2 The insider, once more} *)

module Raw : sig
  val rewrite_entry : t -> seq:int -> op:op -> bool
  (** Alter history in place (chain values recomputed so the journal
      stays self-consistent — only the anchors give it away). *)

  val truncate : t -> keep:int -> unit
end
