module Disk = Worm_simdisk.Disk

type snapshot = {
  disk_image : (Disk.addr * string) list;
  vrdt_image : (Serial.t * Vrdt.entry) list;
  current_bound : Firmware.current_bound;
  base_bound : Firmware.base_bound;
}

type t = { store : Worm.t; mutable snapshot : snapshot option; forge_rng : Worm_crypto.Drbg.t }

let create store =
  { store; snapshot = None; forge_rng = Worm_crypto.Drbg.create ~seed:"mallory-forge" }

let disk t = Worm.disk t.store
let vrdt t = Worm.vrdt t.store

let with_active t sn f =
  match Vrdt.find (vrdt t) sn with
  | Some (Vrdt.Active vrd) -> f vrd
  | Some (Vrdt.Deleted _) | None -> false

let flip_first_byte s =
  if String.length s = 0 then s
  else begin
    let b = Bytes.of_string s in
    Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x01));
    Bytes.unsafe_to_string b
  end

let tamper_record_data t sn =
  with_active t sn (fun vrd ->
      match vrd.Vrd.rdl with
      | [] -> false
      | rd :: _ -> Disk.Raw.tamper (disk t) rd ~f:flip_first_byte)

let substitute_record_data t sn replacement =
  with_active t sn (fun vrd ->
      match vrd.Vrd.rdl with
      | [] -> false
      | first :: rest ->
          ignore (Disk.Raw.tamper (disk t) first ~f:(fun _ -> replacement));
          List.iter (fun rd -> ignore (Disk.Raw.tamper (disk t) rd ~f:(fun _ -> ""))) rest;
          let blocks = replacement :: List.map (fun _ -> "") rest in
          let data_hash = Worm_crypto.Chained_hash.(value (of_blocks blocks)) in
          Vrdt.Raw.put (vrdt t) sn (Vrdt.Active { vrd with Vrd.data_hash });
          true)

let tamper_attr_retention t sn ~new_retention_ns =
  with_active t sn (fun vrd ->
      let policy = { vrd.Vrd.attr.Attr.policy with Policy.retention_ns = new_retention_ns } in
      let attr = { vrd.Vrd.attr with Attr.policy } in
      Vrdt.Raw.put (vrdt t) sn (Vrdt.Active { vrd with Vrd.attr });
      true)

let premature_destroy t sn =
  with_active t sn (fun vrd ->
      List.for_all (fun rd -> Disk.Raw.delete (disk t) rd) vrd.Vrd.rdl)

let hide_record t sn =
  with_active t sn (fun vrd ->
      List.iter (fun rd -> ignore (Disk.Raw.delete (disk t) rd)) vrd.Vrd.rdl;
      Vrdt.Raw.remove (vrdt t) sn;
      true)

let forge_deletion_proof t sn =
  (* A plausible-length signature of garbage. *)
  let fake = Worm_crypto.Drbg.generate t.forge_rng 128 in
  Vrdt.Raw.put (vrdt t) sn (Vrdt.Deleted { proof = fake })

let replay_deletion_proof t ~victim ~donor =
  match Vrdt.find (vrdt t) donor with
  | Some (Vrdt.Deleted { proof }) ->
      Vrdt.Raw.put (vrdt t) victim (Vrdt.Deleted { proof });
      true
  | Some (Vrdt.Active _) | None -> false

let forge_window ~lo_from ~hi_from =
  Proof.Proof_in_window
    {
      Firmware.window_id = lo_from.Firmware.window_id;
      lo = lo_from.Firmware.lo;
      hi = hi_from.Firmware.hi;
      sig_lo = lo_from.Firmware.sig_lo;
      sig_hi = hi_from.Firmware.sig_hi;
    }

let capture t =
  t.snapshot <-
    Some
      {
        disk_image = Disk.Raw.snapshot (disk t);
        vrdt_image = Vrdt.Raw.snapshot (vrdt t);
        current_bound = Worm.cached_current_bound t.store;
        base_bound = Worm.cached_base_bound t.store;
      }

let rollback t =
  match t.snapshot with
  | None -> false
  | Some snap ->
      Disk.Raw.restore (disk t) snap.disk_image;
      Vrdt.Raw.restore (vrdt t) snap.vrdt_image;
      true

let read_with_stale_current t sn =
  match t.snapshot with
  | None -> None
  | Some snap -> if Serial.(sn > snap.current_bound.Firmware.sn) then Some (Proof.Proof_unallocated snap.current_bound) else None

let stale_base_response t =
  Option.map (fun snap -> Proof.Proof_below_base snap.base_bound) t.snapshot

let read_denying t sn =
  match read_with_stale_current t sn with
  | Some response -> response
  | None -> begin
      match stale_base_response t with
      | Some (Proof.Proof_below_base b) when Serial.(sn < b.Firmware.sn) -> Proof.Proof_below_base b
      | Some _ | None -> Proof.Refused "no such record"
    end
