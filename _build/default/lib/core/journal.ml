module Codec = Worm_util.Codec
module Sha256 = Worm_crypto.Sha256
module Rsa = Worm_crypto.Rsa
module Device = Worm_scpu.Device

type op =
  | Op_write of Serial.t
  | Op_delete of Serial.t
  | Op_hold of Serial.t * string
  | Op_release of Serial.t * string
  | Op_strengthen of Serial.t
  | Op_window of Serial.t * Serial.t
  | Op_migration_out of string
  | Op_custom of string

let op_to_string = function
  | Op_write sn -> "write " ^ Serial.to_string sn
  | Op_delete sn -> "delete " ^ Serial.to_string sn
  | Op_hold (sn, lit) -> Printf.sprintf "hold %s (%s)" (Serial.to_string sn) lit
  | Op_release (sn, lit) -> Printf.sprintf "release %s (%s)" (Serial.to_string sn) lit
  | Op_strengthen sn -> "strengthen " ^ Serial.to_string sn
  | Op_window (lo, hi) -> Printf.sprintf "window [%s, %s]" (Serial.to_string lo) (Serial.to_string hi)
  | Op_migration_out target -> "migration-out -> " ^ target
  | Op_custom s -> s

let encode_op enc = function
  | Op_write sn ->
      Codec.u8 enc 0;
      Serial.encode enc sn
  | Op_delete sn ->
      Codec.u8 enc 1;
      Serial.encode enc sn
  | Op_hold (sn, lit) ->
      Codec.u8 enc 2;
      Serial.encode enc sn;
      Codec.bytes enc lit
  | Op_release (sn, lit) ->
      Codec.u8 enc 3;
      Serial.encode enc sn;
      Codec.bytes enc lit
  | Op_strengthen sn ->
      Codec.u8 enc 4;
      Serial.encode enc sn
  | Op_window (lo, hi) ->
      Codec.u8 enc 5;
      Serial.encode enc lo;
      Serial.encode enc hi
  | Op_migration_out target ->
      Codec.u8 enc 6;
      Codec.bytes enc target
  | Op_custom s ->
      Codec.u8 enc 7;
      Codec.bytes enc s

type entry = { seq : int; timestamp : int64; op : op; chain : string }
type anchor = { upto_seq : int; chain : string; timestamp : int64; signature : string }

type t = {
  fw : Firmware.t;
  store_id : string;
  mutable log : entry list; (* newest first *)
  mutable anchors_rev : anchor list;
}

let genesis store_id = Sha256.digest ("worm:journal:genesis|" ^ store_id)

let create fw = { fw; store_id = Firmware.store_id fw; log = []; anchors_rev = [] }

let link ~prev_chain ~seq ~timestamp ~op =
  let body =
    Codec.encode
      (fun enc () ->
        Codec.bytes enc prev_chain;
        Codec.int_as_u64 enc seq;
        Codec.u64 enc timestamp;
        encode_op enc op)
      ()
  in
  Sha256.digest body

let head t =
  match t.log with
  | [] -> genesis t.store_id
  | e :: _ -> e.chain

let next_seq t =
  match t.log with
  | [] -> 1
  | e :: _ -> e.seq + 1

let append t op =
  let seq = next_seq t in
  let timestamp = Device.now (Firmware.device t.fw) in
  let chain = link ~prev_chain:(head t) ~seq ~timestamp ~op in
  let entry = { seq; timestamp; op; chain } in
  t.log <- entry :: t.log;
  entry

let length t = List.length t.log
let entries t = List.rev t.log

let anchor_msg ~store_id ~upto_seq ~chain ~timestamp =
  Codec.encode
    (fun enc () ->
      Codec.bytes enc "worm:v1:journal-anchor";
      Codec.bytes enc store_id;
      Codec.int_as_u64 enc upto_seq;
      Codec.bytes enc chain;
      Codec.u64 enc timestamp)
    ()

let anchor t =
  let upto_seq = List.length t.log in
  let chain = head t in
  let dev = Firmware.device t.fw in
  let timestamp = Device.now dev in
  let signature = Device.sign_strong dev (anchor_msg ~store_id:t.store_id ~upto_seq ~chain ~timestamp) in
  let a = { upto_seq; chain; timestamp; signature } in
  t.anchors_rev <- a :: t.anchors_rev;
  a

let anchors t = List.rev t.anchors_rev

let recompute_chain ~store_id entries_list =
  List.fold_left
    (fun (prev, ok) e ->
      let expected = link ~prev_chain:prev ~seq:e.seq ~timestamp:e.timestamp ~op:e.op in
      (e.chain, ok && Worm_util.Ct.equal expected e.chain))
    (genesis store_id, true)
    entries_list

(* verify_chain cannot know the store id, so it checks only internal
   consistency from the first entry's implied predecessor: recompute
   relative links. Auditors should prefer verify_anchor. *)
let verify_chain ~entries:entries_list =
  match entries_list with
  | [] -> true
  | first :: _ ->
      (* sequences must be 1..n and each link must match under SOME
         genesis; we can only check links after the first entry. *)
      let seqs_ok = List.for_all2 (fun e i -> e.seq = i) entries_list (List.init (List.length entries_list) (fun i -> first.seq + i)) in
      let links_ok =
        let rec go (prev : entry) = function
          | [] -> true
          | (e : entry) :: rest ->
              Worm_util.Ct.equal e.chain (link ~prev_chain:prev.chain ~seq:e.seq ~timestamp:e.timestamp ~op:e.op)
              && go e rest
        in
        match entries_list with
        | [] -> true
        | _ :: rest -> go first rest
      in
      seqs_ok && links_ok

let verify_anchor ~signing ~store_id ~entries:entries_list (a : anchor) =
  let msg = anchor_msg ~store_id ~upto_seq:a.upto_seq ~chain:a.chain ~timestamp:a.timestamp in
  Rsa.verify signing ~msg ~signature:a.signature
  &&
  let prefix = List.filter (fun e -> e.seq <= a.upto_seq) entries_list in
  List.length prefix = a.upto_seq
  &&
  let final_chain, consistent = recompute_chain ~store_id prefix in
  consistent && Worm_util.Ct.equal final_chain a.chain

module Raw = struct
  let rewrite_entry t ~seq ~op =
    if seq < 1 || seq > List.length t.log then false
    else begin
      (* rewrite in chronological order, recomputing every chain value
         from the tampered point forward so the journal self-checks *)
      let chronological = List.rev t.log in
      let _, rebuilt =
        List.fold_left
          (fun (prev_chain, acc) e ->
            let op = if e.seq = seq then op else e.op in
            let chain = link ~prev_chain ~seq:e.seq ~timestamp:e.timestamp ~op in
            (chain, { e with op; chain } :: acc))
          (genesis t.store_id, [])
          chronological
      in
      t.log <- rebuilt;
      true
    end

  let truncate t ~keep = t.log <- List.filteri (fun _ e -> e.seq <= keep) t.log
end
