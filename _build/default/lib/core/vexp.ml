module Entry = struct
  type t = int64 * Serial.t

  let compare (e1, s1) (e2, s2) =
    let c = Int64.compare e1 e2 in
    if c <> 0 then c else Serial.compare s1 s2
end

module Entry_set = Set.Make (Entry)

type t = { capacity : int; mutable entries : Entry_set.t; by_sn : (Serial.t, int64) Hashtbl.t }

let create ~capacity =
  if capacity <= 0 then invalid_arg "Vexp.create: non-positive capacity";
  { capacity; entries = Entry_set.empty; by_sn = Hashtbl.create 64 }

let capacity t = t.capacity
let length t = Entry_set.cardinal t.entries
let is_full t = length t >= t.capacity
let mem t sn = Hashtbl.mem t.by_sn sn

type insert_result = Inserted | Inserted_evicting of int64 * Serial.t | Rejected_full

let remove t sn =
  match Hashtbl.find_opt t.by_sn sn with
  | None -> false
  | Some expiry ->
      t.entries <- Entry_set.remove (expiry, sn) t.entries;
      Hashtbl.remove t.by_sn sn;
      true

let insert t ~expiry sn =
  ignore (remove t sn);
  if not (is_full t) then begin
    t.entries <- Entry_set.add (expiry, sn) t.entries;
    Hashtbl.replace t.by_sn sn expiry;
    Inserted
  end
  else begin
    let ((max_expiry, max_sn) as max_entry) = Entry_set.max_elt t.entries in
    if Int64.compare expiry max_expiry >= 0 then Rejected_full
    else begin
      t.entries <- Entry_set.add (expiry, sn) (Entry_set.remove max_entry t.entries);
      Hashtbl.remove t.by_sn max_sn;
      Hashtbl.replace t.by_sn sn expiry;
      Inserted_evicting (max_expiry, max_sn)
    end
  end

let next_due t = Entry_set.min_elt_opt t.entries

let pop_due t ~now =
  let rec go acc =
    match Entry_set.min_elt_opt t.entries with
    | Some ((expiry, sn) as entry) when Int64.compare expiry now <= 0 ->
        t.entries <- Entry_set.remove entry t.entries;
        Hashtbl.remove t.by_sn sn;
        go (entry :: acc)
    | Some _ | None -> List.rev acc
  in
  go []

let to_list t = Entry_set.elements t.entries
