(** Adaptive witness-strength selection (§4.3).

    "To achieve an adaptive behavior, optimally balancing the
    performance–security trade-off, we need to determine the maximum
    signature strength we can afford for a given throughput update
    rate." This controller watches the recent write arrival rate and the
    deferred-strengthening debt and recommends, per write, the strongest
    witness mode the SCPU can sustain:

    - arrivals within the strong-signature budget → [Strong_now];
    - beyond it but within the weak-signature budget, with strengthening
      debt still clearable inside the security lifetime → [Weak_deferred];
    - genuine overload → [Mac_deferred] (bus-limited, §4.3's HMAC mode).

    The controller is advisory: pass its recommendation as [?witness] to
    {!Worm.write}. It never lowers strength when the queue of deferred
    work is already at risk of outliving the weak constructs. *)

type t

type config = {
  window_ns : int64;  (** arrival-rate estimation window (default 1 s) *)
  headroom : float;
      (** fraction of the theoretical budget actually usable, leaving
          slack for bounds/holds/deletions (default 0.8) *)
  signatures_per_record : float;  (** metasig + datasig = 2. *)
}

val default_config : config

val create : ?config:config -> profile:Worm_scpu.Cost_model.profile -> device_config:Worm_scpu.Device.config -> unit -> t

val note_write : t -> now:int64 -> unit
(** Record one write arrival (call on every ingest). *)

val arrival_rate : t -> now:int64 -> float
(** Writes/second over the trailing window. *)

val sustainable_strong_rate : t -> float
(** Records/second the strong key supports (rate anchors ÷ sigs/record,
    scaled by headroom). *)

val sustainable_weak_rate : t -> float

val recommend : t -> now:int64 -> deferred_backlog:int -> Firmware.witness_mode
(** The strongest affordable mode right now. A backlog that could no
    longer be strengthened within the weak lifetime (at the strong key's
    signing rate) forces the recommendation back UP to [Strong_now] so
    the debt stops growing. *)

val describe : t -> now:int64 -> deferred_backlog:int -> string
(** One-line state summary for logs and demos. *)
