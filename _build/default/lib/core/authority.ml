open Worm_crypto
module Clock = Worm_simclock.Clock

type t = { key : Rsa.secret; cert : Cert.t; clock : Clock.t }

let create ~ca ~clock ~rng ~name =
  let key = Rsa.generate rng ~bits:1024 in
  let now = Clock.now clock in
  let cert =
    Cert.issue ~ca ~subject:name ~role:Cert.Regulation_authority ~key:(Rsa.public_of key) ~not_before:now
      ~not_after:(Int64.add now (Clock.ns_of_years 50.))
  in
  { key; cert; clock }

let cert t = t.cert
let now t = Clock.now t.clock

let hold_credential t ~store_id ~sn ~lit_id =
  Rsa.sign t.key (Wire.hold_credential_msg ~store_id ~sn ~timestamp:(now t) ~lit_id)

let release_credential t ~store_id ~sn ~lit_id =
  Rsa.sign t.key (Wire.release_credential_msg ~store_id ~sn ~timestamp:(now t) ~lit_id)

let place_hold t ~store ~sn ~lit_id ~timeout =
  let timestamp = now t in
  let credential = hold_credential t ~store_id:(Worm.store_id store) ~sn ~lit_id in
  Worm.lit_hold store ~sn ~authority:t.cert ~credential ~lit_id ~timestamp ~timeout

let release_hold t ~store ~sn =
  match Vrdt.find (Worm.vrdt store) sn with
  | Some (Vrdt.Active vrd) -> begin
      match vrd.Vrd.attr.Attr.litigation with
      | None -> Error Firmware.No_hold_present
      | Some hold ->
          let timestamp = now t in
          let credential =
            release_credential t ~store_id:(Worm.store_id store) ~sn ~lit_id:hold.Attr.lit_id
          in
          Worm.lit_release store ~sn ~authority:t.cert ~credential ~timestamp
    end
  | Some (Vrdt.Deleted _) | None -> Error Firmware.Already_deleted
