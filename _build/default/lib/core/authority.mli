(** Litigation / regulation authority (§4.2.2 Litigation).

    A court or regulator that can order litigation holds. It owns an RSA
    key certified by the same CA the SCPUs trust (role
    [Regulation_authority]) and issues the hold/release credentials
    [C = S_reg(SN, current_time, lit_id)] that the firmware validates
    before touching a record's hold state. *)

type t

val create : ca:Worm_crypto.Rsa.secret -> clock:Worm_simclock.Clock.t -> rng:Worm_crypto.Drbg.t -> name:string -> t
(** Generates the authority key pair and its CA certificate (valid 50
    years from [clock]'s now). *)

val cert : t -> Worm_crypto.Cert.t

val hold_credential : t -> store_id:string -> sn:Serial.t -> lit_id:string -> string
(** Credential authorizing a hold on [sn], timestamped now. *)

val release_credential : t -> store_id:string -> sn:Serial.t -> lit_id:string -> string

val now : t -> int64
(** The authority's clock reading — pass as [timestamp] alongside the
    credential (the firmware checks freshness). *)

val place_hold : t -> store:Worm.t -> sn:Serial.t -> lit_id:string -> timeout:int64 -> (unit, Firmware.error) result
(** Convenience: issue a credential and apply it to a local store. *)

val release_hold : t -> store:Worm.t -> sn:Serial.t -> (unit, Firmware.error) result
(** Convenience: release whatever hold this authority holds on [sn].
    Returns [Error No_hold_present] if there is none. *)
