module Disk = Worm_simdisk.Disk
module Chained_hash = Worm_crypto.Chained_hash

type t = { primary : Worm.t; mirror : Worm.t; pairs : (Serial.t, Serial.t) Hashtbl.t }

let create ~primary ~mirror = { primary; mirror; pairs = Hashtbl.create 256 }
let primary t = t.primary
let mirror t = t.mirror

let write ?witness t ~policy ~blocks =
  let p = Worm.write ?witness t.primary ~policy ~blocks in
  let m = Worm.write ?witness t.mirror ~policy ~blocks in
  Hashtbl.replace t.pairs p m;
  (p, m)

let mirror_sn t sn = Hashtbl.find_opt t.pairs sn

let count_deletions outcomes = List.length (List.filter (fun (_, r) -> r = Ok ()) outcomes)

let expire_due t = (count_deletions (Worm.expire_due t.primary), count_deletions (Worm.expire_due t.mirror))

let idle_tick t =
  Worm.idle_tick t.primary;
  Worm.idle_tick t.mirror

type divergence = {
  primary_sn : Serial.t;
  mirror_sn_ : Serial.t;
  primary_verdict : string;
  mirror_verdict : string;
}

let verdict_fingerprint client store sn =
  match Client.verify_read client ~sn (Worm.read store sn) with
  | Client.Valid_data { blocks; _ } ->
      ("valid:" ^ Worm_crypto.Sha256.hex_digest (String.concat "\x00" blocks), "valid-data")
  | v ->
      let name = Client.verdict_name v in
      (name, name)

let divergence_audit t ~primary_client ~mirror_client =
  Hashtbl.fold
    (fun p m acc ->
      let p_fp, p_name = verdict_fingerprint primary_client t.primary p in
      let m_fp, m_name = verdict_fingerprint mirror_client t.mirror m in
      if String.equal p_fp m_fp then acc
      else { primary_sn = p; mirror_sn_ = m; primary_verdict = p_name; mirror_verdict = m_name } :: acc)
    t.pairs []
  |> List.sort (fun a b -> Serial.compare a.primary_sn b.primary_sn)

let ( let* ) = Result.bind

let mirror_blocks t msn =
  match Worm.read t.mirror msn with
  | Proof.Found { blocks; _ } -> Ok blocks
  | r -> Error ("mirror copy unreadable: " ^ Proof.describe r)

let heal_data t ~sn =
  let* msn =
    match mirror_sn t sn with
    | Some m -> Ok m
    | None -> Error "no mirror pairing for this serial"
  in
  let* vrd =
    match Vrdt.find (Worm.vrdt t.primary) sn with
    | Some (Vrdt.Active vrd) -> Ok vrd
    | Some (Vrdt.Deleted _) -> Error "record is deleted on the primary"
    | None -> Error "primary VRDT entry missing (use heal_missing)"
  in
  let* blocks = mirror_blocks t msn in
  (* The primary's own datasig arbitrates: only bytes hashing to the
     committed value may be written back. *)
  let actual = Chained_hash.value (Chained_hash.of_blocks blocks) in
  if not (Worm_util.Ct.equal actual vrd.Vrd.data_hash) then
    Error "mirror bytes do not match the primary datasig (mirror also damaged?)"
  else if List.length blocks <> List.length vrd.Vrd.rdl then Error "block count mismatch"
  else begin
    let disk = Worm.disk t.primary in
    (* overwrite corrupted blocks in place; re-allocate destroyed ones
       (the rdl is unsigned host plumbing, so updating it is fine) *)
    let rdl' =
      List.map2
        (fun rd block -> if Disk.Raw.tamper disk rd ~f:(fun _ -> block) then rd else Disk.write disk block)
        vrd.Vrd.rdl blocks
    in
    if rdl' <> vrd.Vrd.rdl then Vrdt.set_active (Worm.vrdt t.primary) { vrd with Vrd.rdl = rdl' };
    Ok ()
  end

let heal_missing t ~sn =
  let* msn =
    match mirror_sn t sn with
    | Some m -> Ok m
    | None -> Error "no mirror pairing for this serial"
  in
  (match Vrdt.find (Worm.vrdt t.primary) sn with
  | None -> Ok ()
  | Some _ -> Error "primary entry still present (use heal_data)")
  |> fun r ->
  let* () = r in
  let* blocks = mirror_blocks t msn in
  let* mirror_vrd =
    match Vrdt.find (Worm.vrdt t.mirror) msn with
    | Some (Vrdt.Active vrd) -> Ok vrd
    | Some (Vrdt.Deleted _) | None -> Error "mirror VRD unavailable"
  in
  let source_cert = Firmware.signing_cert (Worm.firmware t.mirror) in
  match
    Worm.import_record t.primary ~source_signing_cert:source_cert
      ~source_store_id:(Worm.store_id t.mirror) ~vrd_bytes:(Vrd.to_bytes mirror_vrd) ~blocks
  with
  | Ok new_sn ->
      Hashtbl.remove t.pairs sn;
      Hashtbl.replace t.pairs new_sn msn;
      Ok new_sn
  | Error e -> Error ("primary SCPU refused re-ingest: " ^ Firmware.error_to_string e)
