module Codec = Worm_util.Codec

let stmt tag fields =
  let enc = Codec.encoder () in
  Codec.bytes enc ("worm:v1:" ^ tag);
  fields enc;
  Codec.to_string enc

let metasig_msg ~store_id ~sn ~attr_bytes =
  stmt "meta" (fun enc ->
      Codec.bytes enc store_id;
      Serial.encode enc sn;
      Codec.bytes enc attr_bytes)

let datasig_msg ~store_id ~sn ~data_hash =
  stmt "data" (fun enc ->
      Codec.bytes enc store_id;
      Serial.encode enc sn;
      Codec.bytes enc data_hash)

let deletion_msg ~store_id ~sn =
  stmt "del" (fun enc ->
      Codec.bytes enc store_id;
      Serial.encode enc sn)

let base_bound_msg ~store_id ~sn ~expires_at =
  stmt "base" (fun enc ->
      Codec.bytes enc store_id;
      Serial.encode enc sn;
      Codec.u64 enc expires_at)

let current_bound_msg ~store_id ~sn ~timestamp =
  stmt "current" (fun enc ->
      Codec.bytes enc store_id;
      Serial.encode enc sn;
      Codec.u64 enc timestamp)

let deletion_window_bound side ~store_id ~window_id ~sn =
  stmt ("delwin:" ^ side) (fun enc ->
      Codec.bytes enc store_id;
      Codec.bytes enc window_id;
      Serial.encode enc sn)

let deletion_window_lo_msg = deletion_window_bound "lo"
let deletion_window_hi_msg = deletion_window_bound "hi"

let hold_or_release tag ~store_id ~sn ~timestamp ~lit_id =
  stmt tag (fun enc ->
      Codec.bytes enc store_id;
      Serial.encode enc sn;
      Codec.u64 enc timestamp;
      Codec.bytes enc lit_id)

let hold_credential_msg = hold_or_release "lit-hold"
let release_credential_msg = hold_or_release "lit-release"

let migration_manifest_msg ~source_store_id ~target_store_id ~base ~current ~content_hash =
  stmt "migration" (fun enc ->
      Codec.bytes enc source_store_id;
      Codec.bytes enc target_store_id;
      Serial.encode enc base;
      Serial.encode enc current;
      Codec.bytes enc content_hash)
