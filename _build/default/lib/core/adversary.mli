(** Mallory's toolkit: the super-user insider of §2.1.

    Every function here exercises only powers the paper grants the
    adversary — direct physical access to disk platters and to the
    host-maintained VRDT, plus the ability to run a dishonest read
    server that replays captured signatures. None touches the SCPU's
    innards. The attack test-suite mounts each of these against
    {!Client.verify_read} and asserts detection (Theorems 1 and 2); the
    same attacks against the soft-WORM baseline succeed. *)

type t

val create : Worm.t -> t

(** {2 Media and table manipulation (Theorem 1 attacks)} *)

val tamper_record_data : t -> Serial.t -> bool
(** Flip a byte in the record's first data block on the platter. *)

val substitute_record_data : t -> Serial.t -> string -> bool
(** Replace the record's data wholesale and update the VRDT's cached
    [data_hash] field to match (the signatures, of course, cannot be
    updated). *)

val tamper_attr_retention : t -> Serial.t -> new_retention_ns:int64 -> bool
(** Rewrite the VRDT attributes to shorten the retention period —
    the "expire my regrets early" attack. *)

val premature_destroy : t -> Serial.t -> bool
(** Destroy the data blocks with raw media access, leaving the VRDT
    entry in place (a crash-faking attack). *)

(** {2 Hiding and fake-deletion (Theorem 2 attacks)} *)

val hide_record : t -> Serial.t -> bool
(** Expunge the VRDT entry and the data, as if never written. *)

val forge_deletion_proof : t -> Serial.t -> unit
(** Replace the record's VRDT entry with a fabricated deletion proof
    (random bytes of plausible length). *)

val replay_deletion_proof : t -> victim:Serial.t -> donor:Serial.t -> bool
(** Replace the victim's entry with the {e genuine} deletion proof of a
    different, rightfully deleted record. *)

val forge_window : lo_from:Firmware.deletion_window -> hi_from:Firmware.deletion_window -> Proof.read_response
(** Combine the lower bound of one signed deletion window with the upper
    bound of another, hoping to cover a live record between them — the
    exact recombination the correlated window IDs exist to stop
    (§4.2.1). *)

(** {2 Replay / rollback (replication attacks)} *)

val capture : t -> unit
(** Photograph the platters, the VRDT, and the currently served bounds
    (Mallory preparing a seemingly identical replica). *)

val rollback : t -> bool
(** Restore the captured image: disk and VRDT revert; records written
    since vanish. Returns [false] if nothing was captured. *)

val read_with_stale_current : t -> Serial.t -> Proof.read_response option
(** Serve "never written" for a post-capture record, using the captured
    (now stale) current bound. [None] until {!capture} was called. *)

val stale_base_response : t -> Proof.read_response option
(** Serve the captured base bound as deletion evidence (replay of an
    old [S_s(SN_base)]). *)

(** {2 A fully dishonest read server} *)

val read_denying : t -> Serial.t -> Proof.read_response
(** Respond to a read while denying the record exists, using the most
    plausible lie available: a captured stale current bound, a stale
    base bound, or a bare refusal. *)
