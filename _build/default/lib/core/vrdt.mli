(** The Virtual Record Descriptor Table (VRDT).

    Maintained by the untrusted main CPU on unsecured storage: an index
    from serial numbers to either a live VRD or a deletion proof
    [S_d(SN)]. Runs of deletion proofs may be collapsed into signed
    deletion windows (kept in {!Store_state}), after which the per-SN
    entries are expelled.

    Because the table is host-controlled, this module deliberately
    exposes {!Raw} mutators with no checks at all — they are the
    insider's interface, and the test suite uses them to mount the
    paper's attacks. Integrity never depends on this module behaving. *)

type entry =
  | Active of Vrd.t
  | Deleted of { proof : string }  (** S_d(SN) *)

type t

val create : unit -> t
val find : t -> Serial.t -> entry option
val set_active : t -> Vrd.t -> unit
val set_deleted : t -> Serial.t -> proof:string -> unit

val drop : t -> Serial.t -> unit
(** Expel an entry (window collapse / base advance housekeeping). *)

val entry_count : t -> int
val active_count : t -> int
val deleted_count : t -> int

val iter : t -> (Serial.t -> entry -> unit) -> unit
val fold : t -> init:'a -> f:('a -> Serial.t -> entry -> 'a) -> 'a

val active_sns : t -> Serial.t list
(** Ascending. *)

val approx_bytes : t -> int
(** Serialized size of the table — the storage-reduction benchmark
    tracks how window collapsing shrinks this. *)

(** Unchecked mutation: the super-user insider's view of the table. *)
module Raw : sig
  val put : t -> Serial.t -> entry -> unit
  val remove : t -> Serial.t -> unit
  val snapshot : t -> (Serial.t * entry) list
  val restore : t -> (Serial.t * entry) list -> unit
end
