open Worm_crypto
module Clock = Worm_simclock.Clock

type freshness = Timestamped of int64 | Direct_scpu of (unit -> Firmware.current_bound)

type t = {
  signing : Rsa.public;
  deletion : Rsa.public;
  store_id : string;
  freshness : freshness;
  clock : Clock.t;
}

let default_max_bound_age = Clock.ns_of_min 5.

let connect ~ca ~clock ?(max_bound_age_ns = default_max_bound_age) ?freshness ~signing_cert ~deletion_cert
    ~store_id () =
  let now = Clock.now clock in
  let freshness = Option.value ~default:(Timestamped max_bound_age_ns) freshness in
  if not (Cert.verify ~ca ~now signing_cert) then Error "signing certificate rejected"
  else if signing_cert.Cert.role <> Cert.Scpu_signing then Error "signing certificate has the wrong role"
  else if not (Cert.verify ~ca ~now deletion_cert) then Error "deletion certificate rejected"
  else if deletion_cert.Cert.role <> Cert.Scpu_deletion then Error "deletion certificate has the wrong role"
  else
    Ok
      {
        signing = signing_cert.Cert.key;
        deletion = deletion_cert.Cert.key;
        store_id;
        freshness;
        clock;
      }

let for_store ~ca ~clock ?max_bound_age_ns ?freshness store =
  let fw = Worm.firmware store in
  match
    connect ~ca ~clock ?max_bound_age_ns ?freshness ~signing_cert:(Firmware.signing_cert fw)
      ~deletion_cert:(Firmware.deletion_cert fw) ~store_id:(Worm.store_id store) ()
  with
  | Ok t -> t
  | Error msg -> failwith ("Client.for_store: " ^ msg)

type violation =
  | Wrong_serial
  | Meta_witness_invalid
  | Data_witness_invalid
  | Data_mismatch
  | Current_bound_invalid
  | Stale_current_bound
  | Base_bound_invalid
  | Base_bound_expired
  | Base_does_not_cover
  | Deletion_proof_invalid
  | Window_bound_invalid
  | Window_does_not_cover
  | Absence_unproven

let violation_to_string = function
  | Wrong_serial -> "record carries a different serial number"
  | Meta_witness_invalid -> "metasig does not verify"
  | Data_witness_invalid -> "datasig does not verify"
  | Data_mismatch -> "data does not hash to the signed value"
  | Current_bound_invalid -> "current-bound signature does not verify"
  | Stale_current_bound -> "current bound is older than the freshness limit"
  | Base_bound_invalid -> "base-bound signature does not verify"
  | Base_bound_expired -> "base bound has expired (possible replay)"
  | Base_does_not_cover -> "serial is not below the signed base"
  | Deletion_proof_invalid -> "deletion proof does not verify"
  | Window_bound_invalid -> "deletion-window bounds do not verify under one window id"
  | Window_does_not_cover -> "serial lies outside the deletion window"
  | Absence_unproven -> "host failed to prove the record's absence"

type verdict =
  | Valid_data of { vrd : Vrd.t; blocks : string list }
  | Committed_unverifiable
  | Properly_deleted
  | Never_written
  | Violation of violation list

let verdict_name = function
  | Valid_data _ -> "valid-data"
  | Committed_unverifiable -> "committed-unverifiable"
  | Properly_deleted -> "properly-deleted"
  | Never_written -> "never-written"
  | Violation vs -> "VIOLATION: " ^ String.concat "; " (List.map violation_to_string vs)

(* A witness verdict: [Ok true] = verifies, [Ok false] = MAC (cannot be
   checked by a client), [Error ()] = forged. *)
let check_witness t msg = function
  | Witness.Strong signature -> if Rsa.verify t.signing ~msg ~signature then Ok true else Error ()
  | Witness.Weak { cert; signature } ->
      (* Short-lived key: chained under the signing key, honored only
         within its lifetime (after which it must have been
         strengthened, so encountering it live is itself suspect). *)
      if
        Cert.verify ~ca:t.signing ~now:(Clock.now t.clock) cert
        && cert.Cert.role = Cert.Scpu_short_term
        && Rsa.verify cert.Cert.key ~msg ~signature
      then Ok true
      else Error ()
  | Witness.Mac _ -> Ok false

let verify_current_bound_sig t (b : Firmware.current_bound) =
  let msg = Wire.current_bound_msg ~store_id:t.store_id ~sn:b.Firmware.sn ~timestamp:b.Firmware.timestamp in
  Rsa.verify t.signing ~msg ~signature:b.Firmware.signature

(* Validate an absence claim's bound under the configured freshness
   policy; returns the bound whose [sn] the caller should trust. *)
let check_current_bound t (bound : Firmware.current_bound) =
  match t.freshness with
  | Timestamped max_age ->
      if not (verify_current_bound_sig t bound) then Error Current_bound_invalid
      else if Int64.compare (Int64.sub (Clock.now t.clock) bound.Firmware.timestamp) max_age > 0 then
        Error Stale_current_bound
      else Ok bound
  | Direct_scpu fetch ->
      (* option (i): ignore the served bound, ask the SCPU ourselves *)
      let fresh = fetch () in
      if verify_current_bound_sig t fresh then Ok fresh else Error Current_bound_invalid

let verify_found t ~sn (vrd : Vrd.t) blocks =
  let violations = ref [] in
  let flag v = violations := v :: !violations in
  if not (Serial.equal vrd.Vrd.sn sn) then flag Wrong_serial;
  let meta_msg = Wire.metasig_msg ~store_id:t.store_id ~sn:vrd.Vrd.sn ~attr_bytes:(Attr.to_bytes vrd.Vrd.attr) in
  let data_msg = Wire.datasig_msg ~store_id:t.store_id ~sn:vrd.Vrd.sn ~data_hash:vrd.Vrd.data_hash in
  let meta_ok =
    match check_witness t meta_msg vrd.Vrd.metasig with
    | Ok v -> v
    | Error () ->
        flag Meta_witness_invalid;
        true
  in
  let data_ok =
    match check_witness t data_msg vrd.Vrd.datasig with
    | Ok v -> v
    | Error () ->
        flag Data_witness_invalid;
        true
  in
  let actual_hash = Chained_hash.value (Chained_hash.of_blocks blocks) in
  if not (Worm_util.Ct.equal actual_hash vrd.Vrd.data_hash) then flag Data_mismatch;
  match !violations with
  | [] -> if meta_ok && data_ok then Valid_data { vrd; blocks } else Committed_unverifiable
  | vs -> Violation (List.rev vs)

let verify_read t ~sn (response : Proof.read_response) =
  match response with
  | Proof.Found { vrd; blocks } -> verify_found t ~sn vrd blocks
  | Proof.Proof_deleted { sn = psn; proof } ->
      let msg = Wire.deletion_msg ~store_id:t.store_id ~sn in
      if not (Serial.equal psn sn) then Violation [ Deletion_proof_invalid ]
      else if Rsa.verify t.deletion ~msg ~signature:proof then Properly_deleted
      else Violation [ Deletion_proof_invalid ]
  | Proof.Proof_in_window w ->
      let lo_msg = Wire.deletion_window_lo_msg ~store_id:t.store_id ~window_id:w.Firmware.window_id ~sn:w.Firmware.lo in
      let hi_msg = Wire.deletion_window_hi_msg ~store_id:t.store_id ~window_id:w.Firmware.window_id ~sn:w.Firmware.hi in
      if
        not
          (Rsa.verify t.signing ~msg:lo_msg ~signature:w.Firmware.sig_lo
          && Rsa.verify t.signing ~msg:hi_msg ~signature:w.Firmware.sig_hi)
      then Violation [ Window_bound_invalid ]
      else if not (Serial.(w.Firmware.lo <= sn) && Serial.(sn <= w.Firmware.hi)) then
        Violation [ Window_does_not_cover ]
      else Properly_deleted
  | Proof.Proof_below_base b ->
      let msg = Wire.base_bound_msg ~store_id:t.store_id ~sn:b.Firmware.sn ~expires_at:b.Firmware.expires_at in
      if not (Rsa.verify t.signing ~msg ~signature:b.Firmware.signature) then Violation [ Base_bound_invalid ]
      else if Int64.compare (Clock.now t.clock) b.Firmware.expires_at > 0 then Violation [ Base_bound_expired ]
      else if not Serial.(sn < b.Firmware.sn) then Violation [ Base_does_not_cover ]
      else Properly_deleted
  | Proof.Proof_unallocated current -> begin
      match check_current_bound t current with
      | Error v -> Violation [ v ]
      | Ok trusted ->
          if Serial.(sn > trusted.Firmware.sn) then Never_written else Violation [ Absence_unproven ]
    end
  | Proof.Refused _ -> Violation [ Absence_unproven ]

let verify_migration t ~target_store_id ~base ~current ~content_hash ~manifest_sig =
  let msg =
    Wire.migration_manifest_msg ~source_store_id:t.store_id ~target_store_id ~base ~current ~content_hash
  in
  Rsa.verify t.signing ~msg ~signature:manifest_sig
