module Cost_model = Worm_scpu.Cost_model
module Device = Worm_scpu.Device
module Clock = Worm_simclock.Clock

type config = { window_ns : int64; headroom : float; signatures_per_record : float }

let default_config = { window_ns = Clock.ns_of_sec 1.; headroom = 0.8; signatures_per_record = 2. }

type t = {
  config : config;
  profile : Cost_model.profile;
  device_config : Device.config;
  mutable arrivals : int64 list; (* recent write timestamps, newest first *)
}

let create ?(config = default_config) ~profile ~device_config () =
  if config.headroom <= 0. || config.headroom > 1. then invalid_arg "Adaptive.create: headroom in (0,1]";
  { config; profile; device_config; arrivals = [] }

let prune t ~now =
  let horizon = Int64.sub now t.config.window_ns in
  t.arrivals <- List.filter (fun ts -> Int64.compare ts horizon >= 0) t.arrivals

let note_write t ~now =
  prune t ~now;
  t.arrivals <- now :: t.arrivals

let arrival_rate t ~now =
  prune t ~now;
  float_of_int (List.length t.arrivals) /. (Int64.to_float t.config.window_ns /. 1e9)

let rate_for_bits t bits =
  Cost_model.rsa_sign_per_sec t.profile ~bits /. t.config.signatures_per_record *. t.config.headroom

let sustainable_strong_rate t = rate_for_bits t t.device_config.Device.strong_bits
let sustainable_weak_rate t = rate_for_bits t t.device_config.Device.weak_bits

(* The strengthening debt is serviced during idle periods at the strong
   key's signing rate; a backlog that would take longer than half the
   weak lifetime to clear means new weak witnesses may not be
   strengthened in time, so stop adding to it. *)
let backlog_at_risk t ~deferred_backlog =
  let drain_seconds =
    float_of_int deferred_backlog *. t.config.signatures_per_record
    /. Cost_model.rsa_sign_per_sec t.profile ~bits:t.device_config.Device.strong_bits
  in
  drain_seconds > Int64.to_float t.device_config.Device.weak_lifetime_ns /. 1e9 /. 2.

let recommend t ~now ~deferred_backlog =
  let rate = arrival_rate t ~now in
  if rate <= sustainable_strong_rate t || backlog_at_risk t ~deferred_backlog then Firmware.Strong_now
  else if rate <= sustainable_weak_rate t then Firmware.Weak_deferred
  else Firmware.Mac_deferred

let describe t ~now ~deferred_backlog =
  let mode =
    match recommend t ~now ~deferred_backlog with
    | Firmware.Strong_now -> "strong"
    | Firmware.Weak_deferred -> "weak"
    | Firmware.Mac_deferred -> "mac"
  in
  Printf.sprintf "arrivals %.0f/s (strong budget %.0f/s, weak %.0f/s), backlog %d -> %s"
    (arrival_rate t ~now) (sustainable_strong_rate t) (sustainable_weak_rate t) deferred_backlog mode
