(** Compliant migration (§1 requirements).

    Retention periods are measured in decades; media are not. Migration
    moves every live record from an obsolete store to a new one while
    preserving the security assurances: original attributes (and hence
    retention clocks) survive, the target SCPU independently re-verifies
    and re-witnesses everything, and the source SCPU signs a manifest
    binding the transferred window and a content summary to the target's
    identity, so omissions are detectable afterwards.

    Records with deferred (weak/MAC) witnesses cannot migrate; run an
    idle maintenance pass on the source first. *)

type report = {
  mapping : (Serial.t * Serial.t) list;  (** source SN, target SN; ascending by source *)
  skipped_deleted : int;  (** source SNs already rightfully deleted *)
  source_base : Serial.t;
  source_current : Serial.t;
  content_hash : string;  (** chained hash over (source SN, data hash) of every migrated record *)
  manifest_sig : string;  (** source-SCPU attestation over the manifest *)
}

val migrate : source:Worm.t -> target:Worm.t -> (report, string) result
(** Walk the source's live window, verify and re-ingest every active
    record into [target], then collect the source attestation. Fails on
    the first record the target SCPU refuses. *)

val verify_report : source_client:Client.t -> target_store_id:string -> report -> bool
(** Offline check of a migration report against the source SCPU's
    manifest signature (an auditor's view). *)
