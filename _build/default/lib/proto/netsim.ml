type t = {
  rtt_ns : int64;
  bandwidth : float;
  mutable requests : int;
  mutable bytes : int;
  mutable elapsed_ns : int64;
}

let create ?(rtt_ns = 1_000_000L) ?(bandwidth_bytes_per_sec = 125e6) () =
  { rtt_ns; bandwidth = bandwidth_bytes_per_sec; requests = 0; bytes = 0; elapsed_ns = 0L }

let wrap t transport request =
  let response = transport request in
  let exchanged = String.length request + String.length response in
  t.requests <- t.requests + 1;
  t.bytes <- t.bytes + exchanged;
  let transfer = Int64.of_float (float_of_int exchanged /. t.bandwidth *. 1e9) in
  t.elapsed_ns <- Int64.add t.elapsed_ns (Int64.add t.rtt_ns transfer);
  response

let requests t = t.requests
let bytes_transferred t = t.bytes
let elapsed_ns t = t.elapsed_ns

let reset t =
  t.requests <- 0;
  t.bytes <- 0;
  t.elapsed_ns <- 0L
