open Worm_core

(** Client side of the WORM protocol.

    Connects over an arbitrary byte transport (request bytes in,
    response bytes out — compose a {!Server} with whatever network,
    logging, or adversarial middlebox the scenario needs), fetches and
    CA-validates the store's certificates, and verifies every reply with
    {!Worm_core.Client}. The transport is completely untrusted: byte
    tampering surfaces as a protocol error or a verification violation,
    never as wrong data accepted. *)

type transport = string -> string

type t

val connect :
  ca:Worm_crypto.Rsa.public ->
  clock:Worm_simclock.Clock.t ->
  ?max_bound_age_ns:int64 ->
  transport ->
  (t, string) result
(** Sends [Hello], validates the served certificates against the CA. *)

val store_id : t -> string

val read : t -> Serial.t -> Worm_core.Client.verdict
(** One verified remote read. Transport/protocol failures surface as
    [Violation [Absence_unproven]] — an unreachable or garbled server
    proves nothing, exactly like a refusing one. *)

val audit_sweep : t -> lo:Serial.t -> hi:Serial.t -> (Serial.t * Worm_core.Client.verdict) list
(** Batched verified reads over an inclusive serial range (the
    federal-investigator workload). *)

val bytes_sent : t -> int
val bytes_received : t -> int
