lib/proto/remote_client.mli: Serial Worm_core Worm_crypto Worm_simclock
