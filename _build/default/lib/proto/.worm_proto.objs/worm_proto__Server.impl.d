lib/proto/server.ml: Firmware List Message Worm Worm_core
