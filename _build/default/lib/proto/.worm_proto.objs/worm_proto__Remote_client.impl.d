lib/proto/remote_client.ml: Client List Message Serial String Worm_core
