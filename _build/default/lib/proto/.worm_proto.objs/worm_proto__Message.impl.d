lib/proto/message.ml: Firmware Printf Proof Serial Vrd Worm_core Worm_crypto Worm_util
