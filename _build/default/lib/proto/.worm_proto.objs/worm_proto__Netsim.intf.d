lib/proto/netsim.mli:
