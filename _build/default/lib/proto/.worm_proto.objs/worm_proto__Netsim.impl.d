lib/proto/netsim.ml: Int64 String
