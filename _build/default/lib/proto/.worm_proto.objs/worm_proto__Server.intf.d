lib/proto/server.mli: Message Worm_core
