lib/proto/message.mli: Proof Serial Worm_core Worm_crypto Worm_util
