open Worm_core

type transport = string -> string

type t = {
  transport : transport;
  client : Client.t;
  store_id : string;
  mutable bytes_sent : int;
  mutable bytes_received : int;
}

let roundtrip t request =
  let bytes = Message.encode_request request in
  t.bytes_sent <- t.bytes_sent + String.length bytes;
  let reply = t.transport bytes in
  t.bytes_received <- t.bytes_received + String.length reply;
  Message.decode_response reply

let connect ~ca ~clock ?max_bound_age_ns transport =
  let hello = Message.encode_request Message.Hello in
  match Message.decode_response (transport hello) with
  | Error e -> Error ("handshake failed: " ^ e)
  | Ok (Message.Hello_ack { store_id; signing_cert; deletion_cert }) -> begin
      match Client.connect ~ca ~clock ?max_bound_age_ns ~signing_cert ~deletion_cert ~store_id () with
      | Ok client ->
          Ok
            {
              transport;
              client;
              store_id;
              bytes_sent = String.length hello;
              bytes_received = 0;
            }
      | Error e -> Error e
    end
  | Ok (Message.Protocol_error e) -> Error ("server error: " ^ e)
  | Ok (Message.Read_reply _ | Message.Read_many_reply _) -> Error "handshake failed: unexpected response"

let store_id t = t.store_id

(* A transport that garbles, drops, or misroutes proves nothing — treat
   any protocol-level failure as an unproven absence, the same verdict a
   refusing host earns. *)
let transport_violation = Client.Violation [ Client.Absence_unproven ]

let read t sn =
  match roundtrip t (Message.Read sn) with
  | Ok (Message.Read_reply { sn = reply_sn; response }) when Serial.equal reply_sn sn ->
      Client.verify_read t.client ~sn response
  | Ok _ | Error _ -> transport_violation

let audit_sweep t ~lo ~hi =
  let sns = Serial.range lo hi in
  match roundtrip t (Message.Read_many sns) with
  | Ok (Message.Read_many_reply replies) ->
      List.map
        (fun sn ->
          match List.assoc_opt sn replies with
          | Some response -> (sn, Client.verify_read t.client ~sn response)
          | None -> (sn, transport_violation))
        sns
  | Ok _ | Error _ -> List.map (fun sn -> (sn, transport_violation)) sns

let bytes_sent t = t.bytes_sent
let bytes_received t = t.bytes_received
