open Worm_core

type t = { worm : Worm.t }

let create worm = { worm }
let store t = t.worm

let handle t = function
  | Message.Hello ->
      let fw = Worm.firmware t.worm in
      Message.Hello_ack
        {
          store_id = Worm.store_id t.worm;
          signing_cert = Firmware.signing_cert fw;
          deletion_cert = Firmware.deletion_cert fw;
        }
  | Message.Read sn -> Message.Read_reply { sn; response = Worm.read t.worm sn }
  | Message.Read_many sns ->
      Message.Read_many_reply (List.map (fun sn -> (sn, Worm.read t.worm sn)) sns)

let handle_bytes t bytes =
  match Message.decode_request bytes with
  | Ok request -> Message.encode_response (handle t request)
  | Error e -> Message.encode_response (Message.Protocol_error e)
