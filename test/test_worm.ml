(* Host-side store orchestration: full lifecycle, retention monitor,
   deferred maintenance, window compaction, VEXP overflow, shredding. *)

open Worm_core
open Worm_testkit.Testkit
module Device = Worm_scpu.Device
module Clock = Worm_simclock.Clock
module Disk = Worm_simdisk.Disk

let test_write_read_lifecycle () =
  let env = fresh_env () in
  let sn = write env ~blocks:[ "alpha"; "beta" ] () in
  (match Worm.read env.store sn with
  | Proof.Found { vrd; blocks } ->
      Alcotest.(check (list string)) "blocks back" [ "alpha"; "beta" ] blocks;
      Alcotest.(check int) "rdl entries" 2 (List.length vrd.Vrd.rdl)
  | r -> Alcotest.fail (Proof.describe r));
  check_verdict "client accepts" "valid-data" env sn

let test_read_responses_by_state () =
  let env = fresh_env () in
  let sns = write_n env 3 in
  let sn2 = List.nth sns 1 in
  (* unallocated: served bound may be the cached one, but must cover *)
  (match Worm.read env.store (Serial.of_int 50) with
  | Proof.Proof_unallocated bound ->
      Alcotest.(check bool) "bound below query" true Serial.(bound.Firmware.sn < Serial.of_int 50);
      check_verdict "client accepts" "never-written" env (Serial.of_int 50)
  | r -> Alcotest.fail (Proof.describe r));
  (* deleted: proof served *)
  ignore (expire_all env ~after_s:101.);
  (match Worm.read env.store sn2 with
  | Proof.Proof_deleted _ -> ()
  | r -> Alcotest.fail (Proof.describe r));
  (* after compaction the base bound covers everything *)
  ignore (Worm.compact_windows env.store);
  match Worm.read env.store sn2 with
  | Proof.Proof_below_base bound -> Alcotest.(check int64) "base" 4L (Serial.to_int64 bound.Firmware.sn)
  | r -> Alcotest.fail (Proof.describe r)

let test_expire_due_shreds_data () =
  let env = fresh_env () in
  let sn = write env ~blocks:[ "sensitive" ] () in
  let rdl =
    match Vrdt.find (Worm.vrdt env.store) sn with
    | Some (Vrdt.Active vrd) -> vrd.Vrd.rdl
    | _ -> Alcotest.fail "vrd missing"
  in
  ignore (expire_all env ~after_s:101.);
  List.iter
    (fun rd ->
      Alcotest.(check bool) "block gone" false (Disk.Raw.exists env.disk rd);
      match Disk.Raw.residue env.disk rd with
      | Some residue -> Alcotest.(check bool) "no plaintext residue" false (String.equal residue "sensitive")
      | None -> Alcotest.fail "no residue info")
    rdl

let test_rm_respects_order_and_reschedules () =
  let env = fresh_env () in
  let sn_long = write env ~policy:(short_policy ~retention_s:500. ()) () in
  let sn_short = write env ~policy:(short_policy ~retention_s:50. ()) () in
  (* RM alarm = earliest expiry *)
  (match Worm.next_rm_wakeup env.store with
  | Some t -> Alcotest.(check int64) "alarm" (Clock.ns_of_sec 50.) t
  | None -> Alcotest.fail "no wakeup");
  let outcomes = expire_all env ~after_s:60. in
  Alcotest.(check (list int64)) "only short expired" [ Serial.to_int64 sn_short ]
    (List.map (fun (sn, _) -> Serial.to_int64 sn) outcomes);
  check_verdict "short deleted" "properly-deleted" env sn_short;
  check_verdict "long still valid" "valid-data" env sn_long

let test_deferred_queue_and_strengthen () =
  let env = fresh_env () in
  let sns = write_n env ~witness:Firmware.Weak_deferred 5 in
  Alcotest.(check int) "queued" 5 (List.length (Worm.deferred_backlog env.store));
  Alcotest.(check int) "none overdue yet" 0 (List.length (Worm.deferred_overdue env.store ~now:(Clock.now env.clock)));
  let n = Worm.strengthen_pending env.store ~max:2 () in
  Alcotest.(check int) "partial drain" 2 n;
  Alcotest.(check int) "three left" 3 (List.length (Worm.deferred_backlog env.store));
  let n = Worm.strengthen_pending env.store () in
  Alcotest.(check int) "rest drained" 3 n;
  List.iter
    (fun sn ->
      match Vrdt.find (Worm.vrdt env.store) sn with
      | Some (Vrdt.Active vrd) ->
          Alcotest.(check string) "strong now" "strong" (Witness.strength_name (Vrd.weakest_strength vrd))
      | _ -> Alcotest.fail "missing")
    sns

let test_host_hash_mode_audit_flow () =
  let config = { Worm.default_config with datasig_mode = Worm.Host_hash } in
  let env = fresh_env ~config () in
  let sn = write env ~blocks:[ "data" ] () in
  Alcotest.(check (list int64)) "audit queued" [ Serial.to_int64 sn ]
    (List.map Serial.to_int64 (Worm.audit_backlog env.store));
  Alcotest.(check bool) "host did hashing work" true (Worm.host_busy_ns env.store > 0L);
  let outcome = Worm.run_audits env.store () in
  Alcotest.(check int) "audited" 1 outcome.Worm.audited;
  Alcotest.(check int) "no mismatches" 0 (List.length outcome.Worm.mismatches);
  Alcotest.(check int) "queue empty" 0 (List.length (Worm.audit_backlog env.store));
  check_verdict "verifies end to end" "valid-data" env sn

let test_host_hash_weak_strengthen_runs_audit () =
  let config = { Worm.default_config with datasig_mode = Worm.Host_hash } in
  let env = fresh_env ~config () in
  let sn = write env ~witness:Firmware.Weak_deferred ~blocks:[ "data" ] () in
  ignore (Worm.strengthen_pending env.store ());
  Alcotest.(check int) "audit satisfied during strengthening" 0 (List.length (Worm.audit_backlog env.store));
  check_verdict "valid" "valid-data" env sn

let test_compaction_creates_windows () =
  let env = fresh_env () in
  (* write 8; keep sn1 and sn8 alive so base cannot swallow the run *)
  let long = short_policy ~retention_s:10_000. () in
  let sn1 = Worm.write env.store ~policy:long ~blocks:[ "keep" ] in
  let middle = write_n env ~retention_s:50. 6 in
  let sn8 = Worm.write env.store ~policy:long ~blocks:[ "keep" ] in
  ignore (expire_all env ~after_s:60.);
  let expelled = Worm.compact_windows env.store in
  Alcotest.(check int) "six entries expelled" 6 expelled;
  Alcotest.(check int) "one window" 1 (List.length (Worm.deletion_windows env.store));
  let w = List.hd (Worm.deletion_windows env.store) in
  Alcotest.(check (pair int64 int64)) "window bounds" (2L, 7L)
    (Serial.to_int64 w.Firmware.lo, Serial.to_int64 w.Firmware.hi);
  (* reads inside the window serve the window proof and clients accept *)
  List.iter (fun sn -> check_verdict "window proof ok" "properly-deleted" env sn) middle;
  check_verdict "live record before window fine" "valid-data" env sn1;
  check_verdict "live record after window fine" "valid-data" env sn8;
  (* VRDT shrank *)
  Alcotest.(check int) "only live entries remain" 2 (Vrdt.entry_count (Worm.vrdt env.store))

let test_compaction_skips_short_runs () =
  let env = fresh_env () in
  let long = short_policy ~retention_s:10_000. () in
  ignore (Worm.write env.store ~policy:long ~blocks:[ "a" ]);
  let d1 = write_n env ~retention_s:50. 2 in
  ignore (Worm.write env.store ~policy:long ~blocks:[ "b" ]);
  ignore (expire_all env ~after_s:60.);
  let expelled = Worm.compact_windows env.store in
  Alcotest.(check int) "run of 2 not collapsed" 0 expelled;
  List.iter (fun sn -> check_verdict "individual proofs still served" "properly-deleted" env sn) d1

let test_vexp_overflow_backlog_refeed () =
  let config = { Worm.default_config with vexp_capacity = 4 } in
  let env = fresh_env ~config () in
  (* Ascending retentions: the later writes expire later and are shed. *)
  let sns = List.init 10 (fun i -> write env ~policy:(short_policy ~retention_s:(50. +. float_of_int i) ()) ()) in
  Alcotest.(check bool) "backlog nonempty" true (List.length (Worm.deferred_backlog env.store) = 0);
  let backlog_after = Worm.refeed_vexp env.store in
  Alcotest.(check bool) "vexp capacity still binds" true (backlog_after >= 10 - 4);
  (* advance far enough for everything; deletion drains in waves *)
  Clock.advance env.clock (Clock.ns_of_sec 200.);
  let rec drain rounds deleted =
    if rounds = 0 then deleted
    else begin
      let n = List.length (Worm.expire_due env.store) in
      ignore (Worm.refeed_vexp env.store);
      drain (rounds - 1) (deleted + n)
    end
  in
  let total = drain 5 0 in
  Alcotest.(check int) "all eventually deleted" 10 total;
  List.iter (fun sn -> check_verdict "deleted" "properly-deleted" env sn) sns

let test_idle_tick_converges () =
  let config = { Worm.default_config with datasig_mode = Worm.Host_hash } in
  let env = fresh_env ~config () in
  let sns = write_n env ~witness:Firmware.Mac_deferred 10 in
  Worm.idle_tick env.store;
  Alcotest.(check int) "deferred drained" 0 (List.length (Worm.deferred_backlog env.store));
  Alcotest.(check int) "audits drained" 0 (List.length (Worm.audit_backlog env.store));
  List.iter (fun sn -> check_verdict "all verifiable" "valid-data" env sn) sns

let test_heartbeat_refreshes_bound () =
  let env = fresh_env () in
  ignore (write_n env 2);
  Worm.heartbeat env.store;
  let b1 = Worm.cached_current_bound env.store in
  Alcotest.(check int64) "covers writes" 2L (Serial.to_int64 b1.Firmware.sn);
  (* within the heartbeat interval the cache is served as-is *)
  Clock.advance env.clock (Clock.ns_of_sec 10.);
  let b2 = Worm.cached_current_bound env.store in
  Alcotest.(check int64) "same timestamp" b1.Firmware.timestamp b2.Firmware.timestamp;
  (* after the interval it refreshes *)
  Clock.advance env.clock (Clock.ns_of_sec 61.);
  let b3 = Worm.cached_current_bound env.store in
  Alcotest.(check bool) "timestamp advanced" true (b3.Firmware.timestamp > b1.Firmware.timestamp)

let test_litigation_via_store () =
  let env = fresh_env () in
  let authority = fresh_authority env in
  let sn = write env () in
  let timeout = Int64.add (Clock.now env.clock) (Clock.ns_of_days 365.) in
  (match Authority.place_hold authority ~store:env.store ~sn ~lit_id:"case-1" ~timeout with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Firmware.error_to_string e));
  (* the hold is visible to clients through the VRD *)
  (match Worm.read env.store sn with
  | Proof.Found { vrd; _ } ->
      Alcotest.(check bool) "attr shows hold" true (Attr.on_hold vrd.Vrd.attr ~now:(Clock.now env.clock))
  | r -> Alcotest.fail (Proof.describe r));
  (* expiry does not delete a held record *)
  let outcomes = expire_all env ~after_s:200. in
  Alcotest.(check bool) "hold blocked deletion" true
    (List.for_all (fun (_, r) -> r <> Ok ()) outcomes);
  check_verdict "still readable" "valid-data" env sn;
  (* release via store; RM needs a re-feed because the schedule moved *)
  (match Authority.release_hold authority ~store:env.store ~sn with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Firmware.error_to_string e));
  ignore (Worm.expire_due env.store);
  check_verdict "deleted after release" "properly-deleted" env sn

let test_hold_timeout_allows_deletion () =
  let env = fresh_env () in
  let authority = fresh_authority env in
  let sn = write env () in
  let timeout = Int64.add (Clock.now env.clock) (Clock.ns_of_sec 300.) in
  (match Authority.place_hold authority ~store:env.store ~sn ~lit_id:"case-2" ~timeout with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Firmware.error_to_string e));
  ignore (expire_all env ~after_s:150.);
  check_verdict "held" "valid-data" env sn;
  ignore (expire_all env ~after_s:200.);
  check_verdict "hold lapsed, deleted" "properly-deleted" env sn

let test_double_write_distinct_serials () =
  let env = fresh_env () in
  let sn1 = write env ~blocks:[ "same" ] () in
  let sn2 = write env ~blocks:[ "same" ] () in
  Alcotest.(check bool) "distinct" false (Serial.equal sn1 sn2);
  check_verdict "first fine" "valid-data" env sn1;
  check_verdict "second fine" "valid-data" env sn2

let test_empty_and_large_records () =
  let env = fresh_env () in
  let sn_empty = write env ~blocks:[ "" ] () in
  check_verdict "empty block round-trips" "valid-data" env sn_empty;
  let big = String.make 100_000 'B' in
  let sn_big = write env ~blocks:[ big; big ] () in
  match Worm.read env.store sn_big with
  | Proof.Found { blocks; _ } -> Alcotest.(check int) "200KB back" 200_000 (List.fold_left (fun a b -> a + String.length b) 0 blocks)
  | r -> Alcotest.fail (Proof.describe r)

let test_metrics_snapshot () =
  let env = fresh_env () in
  (* long-lived anchor first so the deleted run stays above the base *)
  ignore (write env ~policy:(short_policy ~retention_s:10_000. ()) ());
  ignore (write_n env ~retention_s:10. 3);
  ignore (expire_all env ~after_s:20.);
  let m = Worm.metrics env.store in
  Alcotest.(check int) "active" 1 m.Worm.m_active;
  Alcotest.(check int) "deletion proofs" 3 m.Worm.m_deleted_entries;
  Alcotest.(check int64) "current" 4L (Serial.to_int64 m.Worm.m_sn_current);
  Alcotest.(check int) "disk holds only live data" 1 m.Worm.m_disk_records;
  Alcotest.(check bool) "pp renders" true (String.length (Format.asprintf "%a" Worm.pp_metrics m) > 0);
  ignore (Worm.compact_windows env.store);
  let m' = Worm.metrics env.store in
  Alcotest.(check int) "window counted" 1 m'.Worm.m_windows;
  Alcotest.(check bool) "table shrank" true (m'.Worm.m_vrdt_bytes < m.Worm.m_vrdt_bytes)

let suite =
  [
    ("metrics snapshot", `Quick, test_metrics_snapshot);
    ("write/read lifecycle", `Quick, test_write_read_lifecycle);
    ("read responses by state", `Quick, test_read_responses_by_state);
    ("expiry shreds data", `Quick, test_expire_due_shreds_data);
    ("RM order and rescheduling", `Quick, test_rm_respects_order_and_reschedules);
    ("deferred queue drains", `Quick, test_deferred_queue_and_strengthen);
    ("host-hash audit flow", `Quick, test_host_hash_mode_audit_flow);
    ("strengthen runs audits", `Quick, test_host_hash_weak_strengthen_runs_audit);
    ("compaction creates windows", `Quick, test_compaction_creates_windows);
    ("compaction skips short runs", `Quick, test_compaction_skips_short_runs);
    ("vexp overflow refeed", `Quick, test_vexp_overflow_backlog_refeed);
    ("idle tick converges", `Quick, test_idle_tick_converges);
    ("heartbeat refreshes bound", `Quick, test_heartbeat_refreshes_bound);
    ("litigation via store", `Quick, test_litigation_via_store);
    ("hold timeout allows deletion", `Quick, test_hold_timeout_allows_deletion);
    ("distinct serials for identical data", `Quick, test_double_write_distinct_serials);
    ("empty and large records", `Quick, test_empty_and_large_records);
  ]

let () = Alcotest.run "worm_store" [ ("worm", suite) ]
