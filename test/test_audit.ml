(* The continuous compliance-audit subsystem: a clean scrub of a fully
   populated store reports nothing; each single-fault injection through
   the insider interfaces yields exactly the matching finding class;
   repair restores a clean report; and the cursor checkpoint resumes a
   killed scrub to the same findings as an uninterrupted one. *)

open Worm_core
open Worm_testkit.Testkit
module Clock = Worm_simclock.Clock
module Scrubber = Worm_audit.Scrubber
module Finding = Worm_audit.Finding
module Report = Worm_audit.Report

let scrubber ?config env = Scrubber.create ?config ~store:env.store ~client:env.client ()

let flip_byte i s =
  let b = Bytes.of_string s in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
  Bytes.to_string b

let flip_datasig env sn =
  match Vrdt.find (Worm.vrdt env.store) sn with
  | Some (Vrdt.Active vrd) ->
      let datasig =
        match vrd.Vrd.datasig with
        | Witness.Strong s -> Witness.Strong (flip_byte 3 s)
        | Witness.Weak { cert; signature } -> Witness.Weak { cert; signature = flip_byte 3 signature }
        | Witness.Mac m -> Witness.Mac (flip_byte 3 m)
      in
      Vrdt.Raw.put (Worm.vrdt env.store) sn (Vrdt.Active { vrd with Vrd.datasig })
  | _ -> Alcotest.fail "record to damage is not live"

let cls_names (r : Report.t) = List.map (fun f -> Finding.cls_name f.Finding.cls) r.Report.findings

let record_finding (r : Report.t) sn =
  match List.find_opt (fun f -> f.Finding.subject = Finding.Record sn) r.Report.findings with
  | Some f -> f
  | None -> Alcotest.failf "no finding for %s" (Serial.to_string sn)

(* ---------- the honest store ---------- *)

let test_clean_scrub_populated_store () =
  (* Every proof shape at once: live records, per-SN deletion proofs
     collapsed into a window, a litigation hold, a journal with SCPU
     anchors. The scrub must cover the full SN space and stay silent. *)
  let config = { Worm.default_config with Worm.journal = true } in
  let env = fresh_env ~config () in
  let long = short_policy ~retention_s:10_000. () in
  ignore (Worm.write env.store ~policy:long ~blocks:[ "anchor" ]);
  ignore (write_n env ~retention_s:10. 6);
  let held = Worm.write env.store ~policy:long ~blocks:[ "under hold" ] in
  let authority = fresh_authority env in
  (match
     Authority.place_hold authority ~store:env.store ~sn:held ~lit_id:"case-7"
       ~timeout:(Int64.add (Clock.now env.clock) (Clock.ns_of_sec 7200.))
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "hold failed: %s" (Firmware.error_to_string e));
  ignore (expire_all env ~after_s:20.);
  Worm.idle_tick env.store;
  ignore (Worm.compact_windows env.store);
  Alcotest.(check bool) "fixture has a window" true (Worm.deletion_windows env.store <> []);
  let report = Scrubber.run_pass (scrubber env) in
  Alcotest.(check (list string)) "no findings" [] (cls_names report);
  Alcotest.(check bool) "clean" true (Report.clean report);
  Alcotest.(check int) "full SN coverage" 8 report.Report.records_scanned

(* ---------- single-fault injections ---------- *)

let test_flipped_datasig_flagged () =
  let env = fresh_env () in
  let sns = write_n env ~retention_s:10_000. 3 in
  let victim = List.nth sns 1 in
  flip_datasig env victim;
  let report = Scrubber.run_pass (scrubber env) in
  Alcotest.(check (list string)) "exactly one bad-signature" [ "bad-signature" ] (cls_names report);
  Alcotest.(check bool) "names the record" true
    ((record_finding report victim).Finding.subject = Finding.Record victim)

let test_dropped_deletion_proof_flagged () =
  let env = fresh_env () in
  let long = short_policy ~retention_s:10_000. () in
  ignore (Worm.write env.store ~policy:long ~blocks:[ "anchor" ]);
  let doomed = write env ~policy:(short_policy ~retention_s:10. ()) () in
  ignore (Worm.write env.store ~policy:long ~blocks:[ "keeper" ]);
  ignore (expire_all env ~after_s:20.);
  (* the host "loses" the S_d(SN) it was entrusted with *)
  Vrdt.Raw.remove (Worm.vrdt env.store) doomed;
  let report = Scrubber.run_pass (scrubber env) in
  Alcotest.(check (list string)) "exactly one missing-proof" [ "missing-proof" ] (cls_names report);
  ignore (record_finding report doomed)

let test_torn_window_flagged () =
  let env = fresh_env () in
  let long = short_policy ~retention_s:10_000. () in
  ignore (Worm.write env.store ~policy:long ~blocks:[ "anchor" ]);
  ignore (write_n env ~retention_s:10. 4);
  ignore (Worm.write env.store ~policy:long ~blocks:[ "keeper" ]);
  ignore (expire_all env ~after_s:20.);
  ignore (Worm.compact_windows env.store);
  (match Worm.deletion_windows env.store with
  | [ w ] ->
      Worm.Raw.set_windows env.store [ { w with Firmware.sig_hi = flip_byte 3 w.Firmware.sig_hi } ]
  | ws -> Alcotest.failf "expected one window, got %d" (List.length ws));
  let report = Scrubber.run_pass (scrubber env) in
  Alcotest.(check bool) "found something" true (report.Report.findings <> []);
  List.iter
    (fun (f : Finding.t) ->
      Alcotest.(check string) "every finding is torn-window" "torn-window" (Finding.cls_name f.Finding.cls))
    report.Report.findings;
  Alcotest.(check bool) "the window itself is named" true
    (List.exists
       (fun (f : Finding.t) ->
         match f.Finding.subject with
         | Finding.Window _ -> true
         | _ -> false)
       report.Report.findings)

let test_stale_bound_flagged_and_repaired () =
  let env = fresh_env () in
  ignore (write_n env ~retention_s:10_000. 2);
  Worm.heartbeat env.store;
  (* The read path would refresh the bound on its own; the scrubber must
     notice that nobody has, via the non-refreshing peek. *)
  Clock.advance env.clock (Clock.ns_of_sec 400.);
  let s = scrubber env in
  let report = Scrubber.run_pass s in
  Alcotest.(check (list string)) "exactly one stale-bound" [ "stale-bound" ] (cls_names report);
  (* the repair is a heartbeat; no mirror needed *)
  List.iter
    (fun (o : Scrubber.repair_outcome) ->
      Alcotest.(check string) "repair action" "heartbeat" o.Scrubber.action;
      match o.Scrubber.result with
      | Ok () -> ()
      | Error e -> Alcotest.failf "heartbeat repair failed: %s" e)
    (Scrubber.repair_all s);
  Alcotest.(check bool) "clean after repair" true (Report.clean (Scrubber.run_pass s))

(* ---------- repair from the mirror ---------- *)

let test_repair_from_mirror () =
  let p = fresh_env () in
  let m = fresh_env () in
  let r = Replicator.create ~primary:p.store ~mirror:m.store in
  let wr retention_s blocks = fst (Replicator.write r ~policy:(short_policy ~retention_s ()) ~blocks) in
  ignore (wr 10_000. [ "anchor" ]);
  let doomed = wr 10. [ "doomed" ] in
  let forged = wr 10_000. [ "forged witness" ] in
  let damaged = wr 10_000. [ "damaged data" ] in
  Clock.advance p.clock (Clock.ns_of_sec 20.);
  ignore (Worm.expire_due p.store);
  (* three faults: lost deletion proof, flipped datasig, flipped data *)
  Vrdt.Raw.remove (Worm.vrdt p.store) doomed;
  flip_datasig p forged;
  let mallory = Adversary.create p.store in
  Alcotest.(check bool) "data damaged" true (Adversary.tamper_record_data mallory damaged);
  let s = scrubber p in
  let before = Scrubber.run_pass s in
  Alcotest.(check int) "three findings" 3 (List.length before.Report.findings);
  Scrubber.attach_mirror s r;
  List.iter
    (fun (o : Scrubber.repair_outcome) ->
      match o.Scrubber.result with
      | Ok () -> ()
      | Error e -> Alcotest.failf "repair '%s' failed: %s" o.Scrubber.action e)
    (Scrubber.repair_all s);
  (* repairs re-queue SCPU data audits; let idle maintenance run them *)
  Worm.idle_tick p.store;
  let after = Scrubber.run_pass s in
  Alcotest.(check (list string)) "clean after repair" [] (cls_names after);
  Alcotest.(check bool) "clean report" true (Report.clean after);
  check_verdict "healed witness verifies" "valid-data" p forged;
  check_verdict "healed data verifies" "valid-data" p damaged;
  check_verdict "re-issued proof verifies" "properly-deleted" p doomed

let test_repair_without_mirror_fails_closed () =
  let env = fresh_env () in
  let sns = write_n env ~retention_s:10_000. 2 in
  flip_datasig env (List.hd sns);
  let s = scrubber env in
  ignore (Scrubber.run_pass s);
  match Scrubber.repair_all s with
  | [ { Scrubber.result = Error _; _ } ] -> ()
  | [ { Scrubber.result = Ok (); _ } ] -> Alcotest.fail "mirror-less repair claimed success"
  | os -> Alcotest.failf "expected one outcome, got %d" (List.length os)

(* ---------- checkpoint / resume ---------- *)

let test_checkpoint_resume_same_findings () =
  let env = fresh_env () in
  let sns = write_n env ~retention_s:10_000. 8 in
  flip_datasig env (List.nth sns 4);
  let config = { Scrubber.default_config with Scrubber.max_records_per_slice = 2 } in
  (* reference: one uninterrupted pass *)
  let expected = Scrubber.run_pass (scrubber ~config env) in
  (* interrupted: two slices, checkpoint, "host restart", resume *)
  let a = scrubber ~config env in
  ignore (Scrubber.run_slice a);
  ignore (Scrubber.run_slice a);
  let blob = Scrubber.save_state a in
  let b = scrubber ~config env in
  (match Scrubber.load_state b blob with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check int64) "cursor resumes where the kill hit"
    (Serial.to_int64 (Scrubber.cursor a))
    (Serial.to_int64 (Scrubber.cursor b));
  let resumed = Scrubber.run_pass b in
  Alcotest.(check int) "same coverage" expected.Report.records_scanned resumed.Report.records_scanned;
  Alcotest.(check int) "same finding count" (List.length expected.Report.findings)
    (List.length resumed.Report.findings);
  List.iter2
    (fun x y -> Alcotest.(check bool) "identical finding" true (Finding.equal x y))
    expected.Report.findings resumed.Report.findings

let test_checkpoint_roundtrip_mid_pass_is_stable () =
  let env = fresh_env () in
  ignore (write_n env ~retention_s:10_000. 5);
  let config = { Scrubber.default_config with Scrubber.max_records_per_slice = 2 } in
  let a = scrubber ~config env in
  ignore (Scrubber.run_slice a);
  let blob = Scrubber.save_state a in
  let b = scrubber ~config env in
  (match Scrubber.load_state b blob with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check string) "re-saving reproduces the checkpoint" blob (Scrubber.save_state b)

(* ---------- cost discipline ---------- *)

let test_slice_respects_record_cap () =
  let env = fresh_env () in
  ignore (write_n env ~retention_s:10_000. 9);
  let config = { Scrubber.default_config with Scrubber.max_records_per_slice = 4 } in
  let s = scrubber ~config env in
  let rec drive acc =
    let stats = Scrubber.run_slice s in
    Alcotest.(check bool) "cap respected" true (stats.Scrubber.examined <= 4);
    if stats.Scrubber.pass_completed then stats.Scrubber.examined + acc
    else drive (stats.Scrubber.examined + acc)
  in
  let total = drive 0 in
  Alcotest.(check int) "every SN examined exactly once" 9 total;
  match Scrubber.last_report s with
  | Some r -> Alcotest.(check int) "three slices" 3 r.Report.slices
  | None -> Alcotest.fail "no report"

let test_slice_respects_time_budget () =
  let env = fresh_env () in
  ignore (write_n env ~retention_s:10_000. 5);
  (* a 1 ns budget still makes progress — exactly one record per slice,
     overshooting the budget by at most that record's cost *)
  let config = { Scrubber.default_config with Scrubber.slice_budget_ns = 1L } in
  let s = scrubber ~config env in
  let stats = Scrubber.run_slice s in
  Alcotest.(check int) "one record per starved slice" 1 stats.Scrubber.examined;
  let report = Scrubber.run_pass s in
  Alcotest.(check int) "pass still terminates with full coverage" 5 report.Report.records_scanned;
  Alcotest.(check bool) "one slice per record (plus the finalizer)" true (report.Report.slices >= 5)

let suite =
  [
    ("clean scrub of a populated store", `Quick, test_clean_scrub_populated_store);
    ("flipped datasig -> bad-signature", `Quick, test_flipped_datasig_flagged);
    ("dropped deletion proof -> missing-proof", `Quick, test_dropped_deletion_proof_flagged);
    ("torn window -> torn-window", `Quick, test_torn_window_flagged);
    ("stale bound -> stale-bound, heartbeat repairs", `Quick, test_stale_bound_flagged_and_repaired);
    ("repair from mirror restores a clean report", `Quick, test_repair_from_mirror);
    ("mirror-less repair fails closed", `Quick, test_repair_without_mirror_fails_closed);
    ("killed scrub resumes to identical findings", `Quick, test_checkpoint_resume_same_findings);
    ("checkpoint roundtrip is stable", `Quick, test_checkpoint_roundtrip_mid_pass_is_stable);
    ("slice respects the record cap", `Quick, test_slice_respects_record_cap);
    ("slice respects the time budget", `Quick, test_slice_respects_time_budget);
  ]

let () = Alcotest.run "worm_audit" [ ("audit", suite) ]
