(* SCPU device model: cost-model calibration against Table 2, signing
   services, weak-key rotation, ledger accounting, tamper response. *)

open Worm_crypto
module Device = Worm_scpu.Device
module Cost_model = Worm_scpu.Cost_model
module Clock = Worm_simclock.Clock

let rng = Drbg.create ~seed:"test-scpu"
let ca = lazy (Rsa.generate rng ~bits:1024)

let device_counter = ref 0

let fresh_device ?(config = Device.test_config) () =
  incr device_counter;
  let clock = Clock.create () in
  let seed = Printf.sprintf "dev-%d" !device_counter in
  let dev = Device.provision ~seed ~clock ~ca:(Lazy.force ca) ~config ~name:"scpu-test" () in
  (dev, clock)

(* ---------- cost model ---------- *)

let close ?(tol = 0.02) name expected actual =
  let rel = abs_float (expected -. actual) /. expected in
  if rel > tol then Alcotest.failf "%s: expected %g within %.0f%%, got %g" name expected (tol *. 100.) actual

let test_table2_anchors_scpu () =
  let p = Cost_model.ibm_4764 in
  close "rsa 512" 4200. (Cost_model.rsa_sign_per_sec p ~bits:512);
  close "rsa 1024" 848. (Cost_model.rsa_sign_per_sec p ~bits:1024);
  close "rsa 2048" 390. (Cost_model.rsa_sign_per_sec p ~bits:2048);
  close "sha1 1KB MB/s" 1.42 (Cost_model.hash_mb_per_sec p ~block_bytes:1024 /. 1.);
  close "sha1 64KB MB/s" 18.6 (Cost_model.hash_mb_per_sec p ~block_bytes:65536);
  close "dma" 82.5e6 p.Cost_model.dma_bytes_per_sec

let test_table2_anchors_host () =
  let p = Cost_model.host_p4 in
  close "rsa 512" 1315. (Cost_model.rsa_sign_per_sec p ~bits:512);
  close "rsa 1024" 261. (Cost_model.rsa_sign_per_sec p ~bits:1024);
  close "rsa 2048" 43. (Cost_model.rsa_sign_per_sec p ~bits:2048);
  close "sha1 1KB" 80e6 (Cost_model.hash_mb_per_sec p ~block_bytes:1024 *. 1e6);
  close "sha1 64KB" 120e6 (Cost_model.hash_mb_per_sec p ~block_bytes:65536 *. 1e6)

let test_cost_model_monotone () =
  let p = Cost_model.ibm_4764 in
  (* longer keys cost strictly more; larger blocks cost strictly more *)
  let s512 = Cost_model.rsa_sign_ns p ~bits:512 in
  let s768 = Cost_model.rsa_sign_ns p ~bits:768 in
  let s1024 = Cost_model.rsa_sign_ns p ~bits:1024 in
  let s4096 = Cost_model.rsa_sign_ns p ~bits:4096 in
  Alcotest.(check bool) "512 < 768 < 1024 < 4096" true (s512 < s768 && s768 < s1024 && s1024 < s4096);
  Alcotest.(check bool) "hash grows" true (Cost_model.hash_ns p ~bytes:100 < Cost_model.hash_ns p ~bytes:100000);
  Alcotest.(check bool) "verify cheaper than sign" true
    (Cost_model.rsa_verify_ns p ~bits:1024 < Cost_model.rsa_sign_ns p ~bits:1024);
  (* extrapolation below the bottom anchor is cubic, not flat *)
  Alcotest.(check bool) "256 cheaper than 512" true (Cost_model.rsa_sign_ns p ~bits:256 < s512)

let test_scpu_host_asymmetry () =
  (* The paper's premise: the SCPU is ~an order of magnitude slower than
     the host on hashing, but faster at RSA (crypto ASICs). *)
  let scpu = Cost_model.ibm_4764 and host = Cost_model.host_p4 in
  Alcotest.(check bool) "host hashes >> scpu" true
    (Cost_model.hash_mb_per_sec host ~block_bytes:1024 > 10. *. Cost_model.hash_mb_per_sec scpu ~block_bytes:1024);
  Alcotest.(check bool) "scpu signs faster (hardware RSA)" true
    (Cost_model.rsa_sign_per_sec scpu ~bits:1024 > Cost_model.rsa_sign_per_sec host ~bits:1024)

(* ---------- device ---------- *)

let test_signing_services () =
  let dev, _ = fresh_device () in
  let msg = "statement" in
  let s = Device.sign_strong dev msg in
  let cert = Device.signing_cert dev in
  Alcotest.(check bool) "strong verifies under signing cert" true
    (Rsa.verify cert.Cert.key ~msg ~signature:s);
  let d = Device.sign_deletion dev msg in
  let dcert = Device.deletion_cert dev in
  Alcotest.(check bool) "deletion verifies under deletion cert" true
    (Rsa.verify dcert.Cert.key ~msg ~signature:d);
  Alcotest.(check bool) "keys are distinct" false
    (Rsa.equal_public cert.Cert.key dcert.Cert.key);
  Alcotest.(check bool) "cross-verification fails" false (Rsa.verify dcert.Cert.key ~msg ~signature:s)

let test_weak_key_chain () =
  let dev, clock = fresh_device () in
  let wcert, wsig = Device.sign_weak dev "burst" in
  let scert = Device.signing_cert dev in
  Alcotest.(check bool) "weak cert chains under signing key" true
    (Cert.verify ~ca:scert.Cert.key ~now:(Clock.now clock) wcert);
  Alcotest.(check bool) "weak cert role" true (wcert.Cert.role = Cert.Scpu_short_term);
  Alcotest.(check bool) "weak signature verifies" true (Rsa.verify wcert.Cert.key ~msg:"burst" ~signature:wsig)

let test_weak_key_rotation () =
  let dev, clock = fresh_device () in
  let c1, _ = Device.sign_weak dev "a" in
  let c2, _ = Device.sign_weak dev "b" in
  Alcotest.(check string) "same key within lifetime" c1.Cert.subject c2.Cert.subject;
  Clock.advance clock (Int64.add (Device.config dev).Device.weak_lifetime_ns 1L);
  let c3, s3 = Device.sign_weak dev "c" in
  Alcotest.(check bool) "rotated" false (String.equal c1.Cert.subject c3.Cert.subject);
  Alcotest.(check bool) "new key signs" true (Rsa.verify c3.Cert.key ~msg:"c" ~signature:s3);
  Alcotest.(check int) "rotation counted" 1 (Device.stats dev).Device.weak_rotations;
  (* the lapsed cert no longer validates *)
  let scert = Device.signing_cert dev in
  Alcotest.(check bool) "old cert expired" false (Cert.verify ~ca:scert.Cert.key ~now:(Clock.now clock) c1)

let test_ledger_and_stats () =
  let dev, _ = fresh_device () in
  Device.reset_busy dev;
  Alcotest.(check int64) "clean" 0L (Device.busy_ns dev);
  ignore (Device.sign_strong dev "x");
  let after_sign = Device.busy_ns dev in
  Alcotest.(check bool) "sign charged" true (after_sign > 0L);
  ignore (Device.hash dev (String.make 1024 'a'));
  Alcotest.(check bool) "hash charged" true (Device.busy_ns dev > after_sign);
  Device.charge_dma dev ~bytes:65536;
  let st = Device.stats dev in
  Alcotest.(check int) "strong signs" 1 st.Device.strong_signs;
  Alcotest.(check int) "hash ops" 1 st.Device.hash_ops;
  Alcotest.(check int) "dma bytes" 65536 st.Device.dma_bytes

let test_batch_signing () =
  let dev, _ = fresh_device () in
  let msgs = [ "r1"; "r2"; "r3" ] in
  (* batch output must be indistinguishable from the one-at-a-time path *)
  let batch = Device.sign_strong_batch dev msgs in
  Alcotest.(check (list string)) "strong batch = sequential" (List.map (Device.sign_strong dev) msgs) batch;
  Device.reset_busy dev;
  let before = Device.stats dev in
  let _ = Device.sign_strong_batch dev msgs in
  let st = Device.stats dev in
  Alcotest.(check int) "batch counts every signature" (before.Device.strong_signs + 3) st.Device.strong_signs;
  let per_sig = Cost_model.rsa_sign_ns (Device.config dev).Device.profile ~bits:(Device.config dev).Device.strong_bits in
  Alcotest.(check int64) "batch charges per signature" (Int64.mul 3L per_sig) (Device.busy_ns dev);
  (* weak batch: one cert covers the whole batch *)
  let cert, wsigs = Device.sign_weak_batch dev msgs in
  List.iter2
    (fun msg signature ->
      Alcotest.(check bool) "weak batch member verifies" true (Rsa.verify cert.Cert.key ~msg ~signature))
    msgs wsigs;
  let dsigs = Device.sign_deletion_batch dev msgs in
  let dcert = Device.deletion_cert dev in
  List.iter2
    (fun msg signature ->
      Alcotest.(check bool) "deletion batch member verifies" true (Rsa.verify dcert.Cert.key ~msg ~signature))
    msgs dsigs

let test_of_measurements () =
  let p =
    Cost_model.of_measurements ~name:"local" ~rsa_sign_anchors:[ (512, 4000.); (1024, 900.) ]
      ~hash_small:(1024, 50e6) ~hash_large:(65536, 200e6) ()
  in
  close "anchor 512 reproduced" 4000. (Cost_model.rsa_sign_per_sec p ~bits:512);
  close "anchor 1024 reproduced" 900. (Cost_model.rsa_sign_per_sec p ~bits:1024);
  close "hash small reproduced" 50. (Cost_model.hash_mb_per_sec p ~block_bytes:1024);
  close "hash large reproduced" 200. (Cost_model.hash_mb_per_sec p ~block_bytes:65536);
  Alcotest.check_raises "unsorted anchors"
    (Invalid_argument "Cost_model.of_measurements: anchors must ascend in bits") (fun () ->
      ignore
        (Cost_model.of_measurements ~name:"bad" ~rsa_sign_anchors:[ (1024, 900.); (512, 4000.) ]
           ~hash_small:(1024, 50e6) ~hash_large:(65536, 200e6) ()))

(* A hand-built profile with no RSA anchors is a caller error with a
   named exception, not an [assert false] crash. *)
let test_anchorless_profile () =
  let p = { Cost_model.ibm_4764 with Cost_model.name = "anchorless"; rsa_sign_anchors = [] } in
  Alcotest.check_raises "empty anchors named"
    (Invalid_argument "Cost_model.rsa_sign: profile \"anchorless\" has no RSA anchors") (fun () ->
      ignore (Cost_model.rsa_sign_per_sec p ~bits:1024));
  Alcotest.check_raises "non-positive bits still checked first"
    (Invalid_argument "Cost_model.rsa_sign: non-positive bits") (fun () ->
      ignore (Cost_model.rsa_sign_per_sec p ~bits:0))

let test_hmac_internal () =
  let dev, _ = fresh_device () in
  let tag = Device.hmac_tag dev "record" in
  Alcotest.(check bool) "verifies" true (Device.hmac_verify dev ~msg:"record" ~tag);
  Alcotest.(check bool) "wrong msg" false (Device.hmac_verify dev ~msg:"recorc" ~tag);
  (* HMACs from a different device cannot verify here *)
  let dev2, _ = fresh_device () in
  let tag2 = Device.hmac_tag dev2 "record" in
  Alcotest.(check bool) "foreign tag rejected" false (Device.hmac_verify dev ~msg:"record" ~tag:tag2)

let test_deterministic_provisioning () =
  let clock = Clock.create () in
  let ca' = Lazy.force ca in
  let d1 = Device.provision ~seed:"same" ~clock ~ca:ca' ~config:Device.test_config ~name:"n" () in
  let d2 = Device.provision ~seed:"same" ~clock ~ca:ca' ~config:Device.test_config ~name:"n" () in
  Alcotest.(check bool) "same seed, same keys" true
    (Rsa.equal_public (Device.signing_cert d1).Cert.key (Device.signing_cert d2).Cert.key);
  let d3 = Device.provision ~seed:"other" ~clock ~ca:ca' ~config:Device.test_config ~name:"n" () in
  Alcotest.(check bool) "different seed, different keys" false
    (Rsa.equal_public (Device.signing_cert d1).Cert.key (Device.signing_cert d3).Cert.key)

let test_tamper_response () =
  let dev, _ = fresh_device () in
  Alcotest.(check bool) "not zeroized" false (Device.is_zeroized dev);
  Device.tamper_respond dev;
  Alcotest.(check bool) "zeroized" true (Device.is_zeroized dev);
  Alcotest.check_raises "sign after zeroize" Device.Tamper_detected (fun () ->
      ignore (Device.sign_strong dev "x"));
  Alcotest.check_raises "hmac after zeroize" Device.Tamper_detected (fun () ->
      ignore (Device.hmac_tag dev "x"));
  Alcotest.check_raises "random after zeroize" Device.Tamper_detected (fun () -> ignore (Device.random dev 8));
  Alcotest.check_raises "certs after zeroize" Device.Tamper_detected (fun () ->
      ignore (Device.signing_cert dev))

let suite =
  [
    ("table 2 anchors, SCPU", `Quick, test_table2_anchors_scpu);
    ("table 2 anchors, host", `Quick, test_table2_anchors_host);
    ("cost model monotone", `Quick, test_cost_model_monotone);
    ("SCPU/host asymmetry", `Quick, test_scpu_host_asymmetry);
    ("signing services", `Quick, test_signing_services);
    ("weak key chain", `Quick, test_weak_key_chain);
    ("weak key rotation", `Quick, test_weak_key_rotation);
    ("ledger and stats", `Quick, test_ledger_and_stats);
    ("batch signing", `Quick, test_batch_signing);
    ("profile from measurements", `Quick, test_of_measurements);
    ("anchorless profile refused", `Quick, test_anchorless_profile);
    ("internal hmac", `Quick, test_hmac_internal);
    ("deterministic provisioning", `Quick, test_deterministic_provisioning);
    ("tamper response", `Quick, test_tamper_response);
  ]

let () = Alcotest.run "worm_scpu" [ ("scpu", suite) ]
