(* Arithmetic laws and known values for the bignum substrate. The RSA
   layer is only as sound as these. *)

open Worm_crypto

let nat = Alcotest.testable (Fmt.of_to_string Nat.to_decimal) Nat.equal

(* Generator: random naturals up to ~600 bits, biased toward small and
   structured values. *)
let gen_nat =
  let open QCheck.Gen in
  let small = map Nat.of_int (int_bound 1_000_000) in
  let of_bits bits =
    map
      (fun s ->
        let rng = Drbg.create ~seed:s in
        Drbg.nat_bits rng bits)
      (string_size (return 8))
  in
  frequency [ (2, small); (1, of_bits 64); (2, of_bits 256); (2, of_bits 600); (1, return Nat.zero); (1, return Nat.one) ]

let arb_nat = QCheck.make ~print:Nat.to_decimal gen_nat
let arb_pair = QCheck.make ~print:(fun (a, b) -> Nat.to_decimal a ^ "," ^ Nat.to_decimal b) QCheck.Gen.(pair gen_nat gen_nat)
let arb_triple =
  QCheck.make
    ~print:(fun (a, b, c) -> String.concat "," (List.map Nat.to_decimal [ a; b; c ]))
    QCheck.Gen.(triple gen_nat gen_nat gen_nat)

let t name = QCheck.Test.make ~name ~count:200

let prop_add_comm = t "add commutative" arb_pair (fun (a, b) -> Nat.equal (Nat.add a b) (Nat.add b a))

let prop_add_assoc =
  t "add associative" arb_triple (fun (a, b, c) ->
      Nat.equal (Nat.add (Nat.add a b) c) (Nat.add a (Nat.add b c)))

let prop_mul_comm = t "mul commutative" arb_pair (fun (a, b) -> Nat.equal (Nat.mul a b) (Nat.mul b a))

let prop_mul_assoc =
  t "mul associative" arb_triple (fun (a, b, c) ->
      Nat.equal (Nat.mul (Nat.mul a b) c) (Nat.mul a (Nat.mul b c)))

let prop_distrib =
  t "mul distributes over add" arb_triple (fun (a, b, c) ->
      Nat.equal (Nat.mul a (Nat.add b c)) (Nat.add (Nat.mul a b) (Nat.mul a c)))

let prop_add_sub = t "(a+b)-b = a" arb_pair (fun (a, b) -> Nat.equal (Nat.sub (Nat.add a b) b) a)

let prop_divmod =
  t "a = b*q + r with r < b" arb_pair (fun (a, b) ->
      QCheck.assume (not (Nat.is_zero b));
      let q, r = Nat.divmod a b in
      Nat.equal a (Nat.add (Nat.mul b q) r) && Nat.compare r b < 0)

let prop_shift_mul =
  t "shift_left k = mul 2^k" (QCheck.pair arb_nat (QCheck.int_bound 100)) (fun (a, k) ->
      Nat.equal (Nat.shift_left a k) (Nat.mul a (Nat.mod_pow ~base:Nat.two ~exp:(Nat.of_int k) ~modulus:(Nat.shift_left Nat.one 200))))

let prop_shift_inverse =
  t "shift right inverts shift left" (QCheck.pair arb_nat (QCheck.int_bound 100)) (fun (a, k) ->
      Nat.equal (Nat.shift_right (Nat.shift_left a k) k) a)

let prop_bytes_roundtrip = t "bytes roundtrip" arb_nat (fun a -> Nat.equal (Nat.of_bytes_be (Nat.to_bytes_be a)) a)

let prop_decimal_roundtrip = t "decimal roundtrip" arb_nat (fun a -> Nat.equal (Nat.of_decimal (Nat.to_decimal a)) a)

let prop_bit_length =
  t "2^(bits-1) <= a < 2^bits" arb_nat (fun a ->
      QCheck.assume (not (Nat.is_zero a));
      let bits = Nat.bit_length a in
      Nat.compare a (Nat.shift_left Nat.one bits) < 0
      && Nat.compare a (Nat.shift_left Nat.one (bits - 1)) >= 0)

let prop_mod_pow_agrees =
  (* Montgomery (odd modulus) agrees with repeated multiplication. *)
  t "mod_pow agrees with naive" (QCheck.triple arb_nat (QCheck.int_bound 40) arb_nat) (fun (base, e, m) ->
      QCheck.assume (Nat.compare m Nat.two > 0);
      let naive = ref (Nat.modulo Nat.one m) in
      for _ = 1 to e do
        naive := Nat.modulo (Nat.mul !naive base) m
      done;
      Nat.equal (Nat.mod_pow ~base ~exp:(Nat.of_int e) ~modulus:m) !naive)

let prop_mod_pow_homomorphism =
  (* exercises the windowed path (exponents > 128 bits): a^(e1+e2) must
     equal a^e1 * a^e2 under any odd modulus *)
  t "a^(e1+e2) = a^e1 * a^e2" arb_triple (fun (a, seed1, m) ->
      QCheck.assume (Nat.compare m Nat.two > 0 && not (Nat.is_even m));
      let rng = Drbg.create ~seed:(Nat.to_decimal seed1) in
      let e1 = Drbg.nat_bits rng 200 and e2 = Drbg.nat_bits rng 170 in
      let lhs = Nat.mod_pow ~base:a ~exp:(Nat.add e1 e2) ~modulus:m in
      let rhs = Nat.modulo (Nat.mul (Nat.mod_pow ~base:a ~exp:e1 ~modulus:m) (Nat.mod_pow ~base:a ~exp:e2 ~modulus:m)) m in
      Nat.equal lhs rhs)

let prop_ctx_agrees_generic =
  (* The fused-CIOS fast path must agree with the reference
     square-and-multiply on random odd moduli of mixed widths,
     including double-width bases (the CRT signing shape). *)
  t "mod_pow_ctx agrees with mod_pow_generic" arb_triple (fun (base, exp, m) ->
      QCheck.assume (Nat.compare m Nat.two > 0 && not (Nat.is_even m));
      let ctx = Nat.mont_init m in
      Nat.equal (Nat.mod_pow_ctx ctx ~base ~exp) (Nat.mod_pow_generic ~base ~exp ~modulus:m))

let prop_ctx_reuse =
  (* One cached context across many exponentiations: scratch-buffer
     reuse must not leak state between calls. *)
  t "context reuse is stateless" arb_pair (fun (m, seed) ->
      QCheck.assume (Nat.compare m Nat.two > 0 && not (Nat.is_even m));
      let ctx = Nat.mont_init m in
      let rng = Drbg.create ~seed:(Nat.to_decimal seed) in
      List.for_all
        (fun _ ->
          let base = Drbg.nat_bits rng 300 and exp = Drbg.nat_bits rng 80 in
          Nat.equal (Nat.mod_pow_ctx ctx ~base ~exp) (Nat.mod_pow_generic ~base ~exp ~modulus:m))
        [ (); (); (); () ])

let test_mont_ctx () =
  Alcotest.check_raises "mont_init even" (Invalid_argument "Nat.mont_init: modulus must be odd")
    (fun () -> ignore (Nat.mont_init (Nat.of_int 10)));
  Alcotest.check_raises "mont_init zero" (Invalid_argument "Nat.mont_init: modulus must be odd")
    (fun () -> ignore (Nat.mont_init Nat.zero));
  let m = Nat.of_int 1_000_000_007 in
  let ctx = Nat.mont_init m in
  Alcotest.check nat "mont_modulus" m (Nat.mont_modulus ctx);
  Alcotest.check nat "ctx mod_pow known" (Nat.of_int 976371285)
    (Nat.mod_pow_ctx ctx ~base:Nat.two ~exp:(Nat.of_int 100));
  Alcotest.check nat "ctx base multiple of m" Nat.zero
    (Nat.mod_pow_ctx ctx ~base:(Nat.mul m (Nat.of_int 7)) ~exp:(Nat.of_int 5));
  Alcotest.check nat "ctx zero exponent" Nat.one (Nat.mod_pow_ctx ctx ~base:(Nat.of_int 42) ~exp:Nat.zero)

let prop_mod_inverse =
  t "mod_inverse correct" arb_pair (fun (a, m) ->
      QCheck.assume (Nat.compare m Nat.two > 0);
      match Nat.mod_inverse a m with
      | Some x -> Nat.equal (Nat.modulo (Nat.mul (Nat.modulo a m) x) m) Nat.one
      | None -> not (Nat.is_one (Nat.gcd a m)))

let prop_gcd_divides =
  t "gcd divides both" arb_pair (fun (a, b) ->
      QCheck.assume (not (Nat.is_zero a) || not (Nat.is_zero b));
      let g = Nat.gcd a b in
      QCheck.assume (not (Nat.is_zero g));
      Nat.is_zero (Nat.modulo a g) && Nat.is_zero (Nat.modulo b g))

let test_known_values () =
  Alcotest.check nat "small mul" (Nat.of_int 1_000_000) (Nat.mul (Nat.of_int 1000) (Nat.of_int 1000));
  let a = Nat.of_decimal "340282366920938463463374607431768211456" (* 2^128 *) in
  Alcotest.check nat "2^128" a (Nat.shift_left Nat.one 128);
  Alcotest.(check int) "bit_length 2^128" 129 (Nat.bit_length a);
  Alcotest.check nat "pred/succ" a (Nat.succ (Nat.pred a));
  (* 2^100 mod (1e9+7) *)
  Alcotest.check nat "mod_pow known" (Nat.of_int 976371285)
    (Nat.mod_pow ~base:Nat.two ~exp:(Nat.of_int 100) ~modulus:(Nat.of_int 1_000_000_007));
  (* even modulus path *)
  Alcotest.check nat "mod_pow even modulus" (Nat.of_int 743)
    (Nat.mod_pow ~base:(Nat.of_int 7) ~exp:(Nat.of_int 11) ~modulus:(Nat.of_int 1000));
  (* Fermat: 3^(p-1) = 1 mod p for prime p = 2^61-1 *)
  let p = Nat.of_decimal "2305843009213693951" in
  Alcotest.check nat "fermat M61" Nat.one (Nat.mod_pow ~base:(Nat.of_int 3) ~exp:(Nat.pred p) ~modulus:p)

let test_edge_cases () =
  Alcotest.(check bool) "zero is zero" true (Nat.is_zero Nat.zero);
  Alcotest.(check int) "bit_length zero" 0 (Nat.bit_length Nat.zero);
  Alcotest.check nat "zero bytes" Nat.zero (Nat.of_bytes_be "");
  Alcotest.check nat "leading zero bytes" (Nat.of_int 258) (Nat.of_bytes_be "\x00\x00\x01\x02");
  Alcotest.(check string) "to_bytes zero" "" (Nat.to_bytes_be Nat.zero);
  Alcotest.(check string) "padded" "\x00\x00\x01\x02" (Nat.to_bytes_be_padded ~len:4 (Nat.of_int 258));
  Alcotest.check_raises "padding too small" (Invalid_argument "Nat.to_bytes_be_padded: value too large")
    (fun () -> ignore (Nat.to_bytes_be_padded ~len:1 (Nat.of_int 258)));
  Alcotest.check_raises "negative of_int" (Invalid_argument "Nat.of_int: negative") (fun () ->
      ignore (Nat.of_int (-1)));
  Alcotest.check_raises "sub underflow" (Invalid_argument "Nat.sub: negative result") (fun () ->
      ignore (Nat.sub Nat.one Nat.two));
  (match Nat.divmod Nat.one Nat.zero with
  | exception Division_by_zero -> ()
  | _ -> Alcotest.fail "divide by zero accepted");
  Alcotest.(check (option int)) "to_int_opt big" None (Nat.to_int_opt (Nat.shift_left Nat.one 80));
  Alcotest.(check (option int)) "to_int_opt max" (Some max_int) (Nat.to_int_opt (Nat.of_int max_int));
  Alcotest.check nat "modulo by one" Nat.zero (Nat.modulo (Nat.of_int 12345) Nat.one)

let suite =
  [
    ("known values", `Quick, test_known_values);
    ("edge cases", `Quick, test_edge_cases);
    QCheck_alcotest.to_alcotest prop_add_comm;
    QCheck_alcotest.to_alcotest prop_add_assoc;
    QCheck_alcotest.to_alcotest prop_mul_comm;
    QCheck_alcotest.to_alcotest prop_mul_assoc;
    QCheck_alcotest.to_alcotest prop_distrib;
    QCheck_alcotest.to_alcotest prop_add_sub;
    QCheck_alcotest.to_alcotest prop_divmod;
    QCheck_alcotest.to_alcotest prop_shift_mul;
    QCheck_alcotest.to_alcotest prop_shift_inverse;
    QCheck_alcotest.to_alcotest prop_bytes_roundtrip;
    QCheck_alcotest.to_alcotest prop_decimal_roundtrip;
    QCheck_alcotest.to_alcotest prop_bit_length;
    QCheck_alcotest.to_alcotest prop_mod_pow_agrees;
    QCheck_alcotest.to_alcotest prop_mod_pow_homomorphism;
    ("montgomery context", `Quick, test_mont_ctx);
    QCheck_alcotest.to_alcotest prop_ctx_agrees_generic;
    QCheck_alcotest.to_alcotest prop_ctx_reuse;
    QCheck_alcotest.to_alcotest prop_mod_inverse;
    QCheck_alcotest.to_alcotest prop_gcd_divides;
  ]

let () = Alcotest.run "worm_nat" [ ("nat", suite) ]
