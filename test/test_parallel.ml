(* Host-side parallel verification: the domain pool, the verified-
   signature cache, and the guarantee that fanning verification across
   domains never changes a verdict — including violation verdicts on a
   tampered store. Also pins encoded_size arithmetic to the encoders it
   mirrors, and the attack surface of the verify cache: stale or forged
   bounds must not ride on a previously cached verification, and a
   migration (key retirement) must drop every memoized entry. *)

open Worm_core
open Worm_testkit.Testkit
module Clock = Worm_simclock.Clock
module Rsa = Worm_crypto.Rsa
module Cert = Worm_crypto.Cert
module Drbg = Worm_crypto.Drbg
module Pool = Worm_util.Pool
module Lru = Worm_util.Lru
module Codec = Worm_util.Codec
module Scrubber = Worm_audit.Scrubber
module Report = Worm_audit.Report
module Finding = Worm_audit.Finding

(* ---------------------------------------------------------------- *)
(* Pool *)

let test_pool_map_matches_sequential () =
  let input = Array.init 257 (fun i -> i) in
  let f x = (x * x) + 1 in
  let expected = Array.map f input in
  List.iter
    (fun domains ->
      Pool.with_pool ~domains (fun pool ->
          Alcotest.(check (array int))
            (Printf.sprintf "order and values preserved at %d domains" domains)
            expected (Pool.parallel_map pool f input)))
    [ 1; 2; 3; 4 ]

let test_pool_map_list () =
  Pool.with_pool ~domains:3 (fun pool ->
      Alcotest.(check (list int)) "empty" [] (Pool.map_list pool succ []);
      Alcotest.(check (list int)) "singleton" [ 42 ] (Pool.map_list pool succ [ 41 ]);
      let xs = List.init 100 (fun i -> i) in
      Alcotest.(check (list int)) "list order preserved" (List.map succ xs) (Pool.map_list pool succ xs))

let test_pool_for () =
  Pool.with_pool ~domains:4 (fun pool ->
      let out = Array.make 200 (-1) in
      Pool.parallel_for pool ~n:200 (fun i -> out.(i) <- 2 * i);
      Alcotest.(check (array int)) "every index visited once" (Array.init 200 (fun i -> 2 * i)) out;
      Pool.parallel_for pool ~n:0 (fun _ -> assert false))

let test_pool_exception_propagates () =
  Pool.with_pool ~domains:3 (fun pool ->
      Alcotest.check_raises "worker exception re-raised" (Failure "boom") (fun () ->
          ignore (Pool.parallel_map pool (fun x -> if x = 150 then failwith "boom" else x) (Array.init 300 Fun.id)));
      (* the pool survives a failed batch *)
      Alcotest.(check (array int)) "pool usable after failure" [| 1; 2; 3 |]
        (Pool.parallel_map pool succ [| 0; 1; 2 |]))

let test_pool_recommended () =
  Alcotest.(check bool) "recommended_domains >= 1" true (Pool.recommended_domains () >= 1)

(* ---------------------------------------------------------------- *)
(* Lru *)

let test_lru_basic () =
  let c = Lru.create 2 in
  Lru.put c "a" 1;
  Lru.put c "b" 2;
  Alcotest.(check (option int)) "find a" (Some 1) (Lru.find c "a");
  (* touching "a" makes "b" the eviction victim *)
  Lru.put c "c" 3;
  Alcotest.(check (option int)) "b evicted" None (Lru.find c "b");
  Alcotest.(check (option int)) "a kept" (Some 1) (Lru.find c "a");
  Alcotest.(check (option int)) "c kept" (Some 3) (Lru.find c "c");
  Alcotest.(check int) "length bounded" 2 (Lru.length c);
  Lru.remove c "a";
  Alcotest.(check bool) "removed" false (Lru.mem c "a");
  Lru.clear c;
  Alcotest.(check int) "cleared" 0 (Lru.length c)

let test_lru_zero_capacity () =
  let c = Lru.create 0 in
  Lru.put c "a" 1;
  Alcotest.(check int) "capacity 0 stores nothing" 0 (Lru.length c);
  Alcotest.(check (option int)) "no entry" None (Lru.find c "a")

(* ---------------------------------------------------------------- *)
(* encoded_size mirrors the encoders *)

let test_encoded_sizes_match_encoders () =
  let env = fresh_env () in
  let long = short_policy ~retention_s:10_000. () in
  ignore (Worm.write env.store ~witness:Firmware.Strong_now ~policy:long ~blocks:[ "s" ]);
  ignore (Worm.write env.store ~witness:Firmware.Weak_deferred ~policy:long ~blocks:[ "w"; "w2" ]);
  ignore (Worm.write env.store ~witness:Firmware.Mac_deferred ~policy:long ~blocks:[ "m" ]);
  let held = Worm.write env.store ~policy:long ~blocks:[ "held" ] in
  let authority = fresh_authority env in
  (match
     Authority.place_hold authority ~store:env.store ~sn:held ~lit_id:"case-42"
       ~timeout:(Int64.add (Clock.now env.clock) (Clock.ns_of_sec 7200.))
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Firmware.error_to_string e));
  let checked = ref 0 in
  Vrdt.iter (Worm.vrdt env.store) (fun _sn entry ->
      match entry with
      | Vrdt.Active vrd ->
          incr checked;
          let check name size bytes =
            Alcotest.(check int) (Printf.sprintf "%s encoded_size" name) (String.length bytes) size
          in
          check "vrd" (Vrd.encoded_size vrd) (Vrd.to_bytes vrd);
          check "attr" (Attr.encoded_size vrd.Vrd.attr) (Attr.to_bytes vrd.Vrd.attr);
          check "policy"
            (Policy.encoded_size vrd.Vrd.attr.Attr.policy)
            (Codec.encode Policy.encode vrd.Vrd.attr.Attr.policy);
          check "metasig" (Witness.encoded_size vrd.Vrd.metasig) (Codec.encode Witness.encode vrd.Vrd.metasig);
          check "datasig" (Witness.encoded_size vrd.Vrd.datasig) (Codec.encode Witness.encode vrd.Vrd.datasig)
      | _ -> ());
  Alcotest.(check bool) "covered strong/weak/mac/held records" true (!checked >= 4);
  let fw = Worm.firmware env.store in
  List.iter
    (fun (name, cert) ->
      Alcotest.(check int) name (String.length (Codec.encode Cert.encode cert)) (Cert.encoded_size cert))
    [ ("signing cert", Firmware.signing_cert fw); ("deletion cert", Firmware.deletion_cert fw) ];
  let pub = ca_pub () in
  Alcotest.(check int) "rsa public"
    (String.length (Codec.encode Rsa.encode_public pub))
    (Rsa.public_encoded_size pub);
  Alcotest.(check int) "serial" (String.length (Codec.encode Serial.encode Serial.first)) Serial.encoded_size

(* ---------------------------------------------------------------- *)
(* Parallel verification is verdict-identical to sequential *)

(* A store exercising every §4.2.2 read outcome plus tampering: a
   below-base region, a deletion window, live records (one with a
   flipped datasig, one with its VRDT entry dropped), and unallocated
   serials above the current bound. *)
let adversarial_items env =
  ignore (write_n env ~retention_s:10. 4);
  let anchor = write env ~policy:(short_policy ~retention_s:10_000. ()) () in
  ignore (write_n env ~retention_s:10. 4);
  let live = write_n env ~retention_s:10_000. 4 in
  ignore (expire_all env ~after_s:11.);
  Worm.idle_tick env.store;
  ignore (Worm.compact_windows env.store);
  Worm.heartbeat env.store;
  (* tamper: flip a datasig byte on one live record, drop another *)
  let victim = List.nth live 1 in
  (match Vrdt.find (Worm.vrdt env.store) victim with
  | Some (Vrdt.Active vrd) ->
      let datasig =
        match vrd.Vrd.datasig with
        | Witness.Strong s ->
            let b = Bytes.of_string s in
            Bytes.set b 3 (Char.chr (Char.code (Bytes.get b 3) lxor 1));
            Witness.Strong (Bytes.to_string b)
        | w -> w
      in
      Vrdt.Raw.put (Worm.vrdt env.store) victim (Vrdt.Active { vrd with Vrd.datasig })
  | _ -> Alcotest.fail "victim not active");
  Vrdt.Raw.remove (Worm.vrdt env.store) (List.nth live 2);
  let top = List.fold_left (fun _ sn -> sn) anchor live in
  let above = [ Serial.next top; Serial.next (Serial.next top) ] in
  let sns = Serial.range Serial.first top @ above in
  List.map (fun sn -> (sn, Worm.read env.store sn)) sns

let test_parallel_verify_identical () =
  let env = fresh_env () in
  let items = adversarial_items env in
  let sequential_client = Client.for_store ~ca:(ca_pub ()) ~clock:env.clock ~verify_cache:0 env.store in
  let reference = List.map (fun (sn, r) -> (sn, Client.verify_read sequential_client ~sn r)) items in
  Alcotest.(check bool) "reference includes violations" true
    (List.exists (fun (_, v) -> match v with Client.Violation _ -> true | _ -> false) reference);
  let check name verdicts = Alcotest.(check bool) name true (verdicts = reference) in
  check "verify_read_many without pool" (Client.verify_read_many sequential_client items);
  check "cached client, no pool" (Client.verify_read_many env.client items);
  List.iter
    (fun domains ->
      Pool.with_pool ~domains (fun pool ->
          let cached = Client.for_store ~ca:(ca_pub ()) ~clock:env.clock env.store in
          check
            (Printf.sprintf "pooled x%d, cache cold" domains)
            (Client.verify_read_many ~pool cached items);
          check
            (Printf.sprintf "pooled x%d, cache warm" domains)
            (Client.verify_read_many ~pool cached items);
          check
            (Printf.sprintf "pooled x%d, cache disabled" domains)
            (Client.verify_read_many ~pool sequential_client items)))
    [ 2; 4 ]

let test_rsa_verify_batch_identical () =
  let key = Rsa.generate rng ~bits:512 in
  let pub = Rsa.public_of key in
  let msgs = List.init 9 (fun i -> Printf.sprintf "msg-%d" i) in
  let items = List.map (fun m -> (m, Rsa.sign key m)) msgs in
  (* one forged signature in the middle *)
  let items =
    List.mapi (fun i (m, s) -> if i = 4 then (m, String.init (String.length s) (fun _ -> '\x01')) else (m, s)) items
  in
  let expected = List.map (fun (msg, signature) -> Rsa.verify pub ~msg ~signature) items in
  Alcotest.(check (list bool)) "no pool" expected (Rsa.verify_batch pub items);
  Pool.with_pool ~domains:3 (fun pool ->
      Alcotest.(check (list bool)) "pooled" expected (Rsa.verify_batch ~pool pub items))

let test_parallel_scrub_identical () =
  let env = fresh_env () in
  ignore (adversarial_items env);
  let report_sig (r : Report.t) = (r.Report.records_scanned, r.Report.slices, r.Report.host_ns, r.Report.findings) in
  let sequential = Scrubber.run_pass (Scrubber.create ~store:env.store ~client:env.client ()) in
  Alcotest.(check bool) "tampering found" true (sequential.Report.findings <> []);
  Pool.with_pool ~domains:3 (fun pool ->
      let pooled = Scrubber.run_pass (Scrubber.create ~pool ~store:env.store ~client:env.client ()) in
      Alcotest.(check bool) "findings, coverage, slices, and cost identical" true
        (report_sig pooled = report_sig sequential))

(* ---------------------------------------------------------------- *)
(* Verify-cache attack surface *)

let test_cache_rejects_stale_and_forged_bounds () =
  let env = fresh_env () in
  ignore (write_n env ~retention_s:10_000. 2);
  Worm.heartbeat env.store;
  let above = Serial.next (Serial.next (Serial.next Serial.first)) in
  let old_response = Worm.read env.store above in
  let bound = match old_response with Proof.Proof_unallocated b -> b | _ -> Alcotest.fail "expected unallocated" in
  Alcotest.(check string) "fresh bound accepted (and cached)" "never-written"
    (Client.verdict_name (Client.verify_read env.client ~sn:above old_response));
  let hits_before = match Client.verify_cache_stats env.client with Some s -> s.Client.cache_hits | None -> -1 in
  ignore (Client.verify_read env.client ~sn:above old_response);
  let hits_after = match Client.verify_cache_stats env.client with Some s -> s.Client.cache_hits | None -> -1 in
  Alcotest.(check bool) "second verification memoized" true (hits_after > hits_before);
  (* A forged signature differs from the cached triple, so it can never
     hit the memo: it must be re-verified and rejected. *)
  let forged =
    let b = Bytes.of_string bound.Firmware.signature in
    Bytes.set b 2 (Char.chr (Char.code (Bytes.get b 2) lxor 0x40));
    Proof.Proof_unallocated { bound with Firmware.signature = Bytes.to_string b }
  in
  (match Client.verify_read env.client ~sn:above forged with
  | Client.Violation vs ->
      Alcotest.(check bool) "forged bound flagged" true (List.mem Client.Current_bound_invalid vs)
  | v -> Alcotest.fail ("forged bound accepted as " ^ Client.verdict_name v));
  (* After the freshness window lapses, the old bound's signature is
     still cached as cryptographically valid — but staleness is checked
     per read, outside the memo, so replaying it must fail. *)
  Clock.advance env.clock (Clock.ns_of_sec 400.);
  (match Client.verify_read env.client ~sn:above old_response with
  | Client.Violation vs ->
      Alcotest.(check bool) "stale cached bound rejected" true (List.mem Client.Stale_current_bound vs)
  | v -> Alcotest.fail ("stale bound accepted as " ^ Client.verdict_name v));
  (* A bound-refresh epoch: the new signature misses the cache, gets
     verified fresh, and reads verify clean again. *)
  Worm.heartbeat env.store;
  let misses_before = match Client.verify_cache_stats env.client with Some s -> s.Client.cache_misses | None -> -1 in
  Alcotest.(check string) "refreshed bound verifies" "never-written"
    (Client.verdict_name (Client.verify_read env.client ~sn:above (Worm.read env.store above)));
  let misses_after = match Client.verify_cache_stats env.client with Some s -> s.Client.cache_misses | None -> -1 in
  Alcotest.(check bool) "refreshed bound was not served from cache" true (misses_after > misses_before)

let test_migration_invalidates_cache () =
  let src = fresh_env () in
  let dst = fresh_env () in
  ignore (write_n src ~retention_s:10. 3);
  ignore (expire_all src ~after_s:11.);
  Worm.heartbeat src.store;
  (* prime the cache with absence-proof verifications *)
  List.iter
    (fun sn -> ignore (Client.verify_read src.client ~sn (Worm.read src.store sn)))
    (Serial.range Serial.first (Serial.next (Serial.next (Serial.next Serial.first))));
  let entries () = match Client.verify_cache_stats src.client with Some s -> s.Client.cache_entries | None -> -1 in
  Alcotest.(check bool) "cache primed" true (entries () > 0);
  (match Migration.migrate ~source:src.store ~target:dst.store with
  | Error e -> Alcotest.fail e
  | Ok report ->
      Alcotest.(check bool) "attestation verifies" true
        (Migration.verify_report ~source_client:src.client ~target_store_id:(Worm.store_id dst.store) report));
  Alcotest.(check int) "migration retired the key epoch: cache empty" 0 (entries ());
  (* explicit invalidation is also available to callers *)
  ignore (Client.verify_read src.client ~sn:Serial.first (Worm.read src.store Serial.first));
  Alcotest.(check bool) "repopulates after invalidation" true (entries () > 0);
  Client.invalidate_verify_cache src.client;
  Alcotest.(check int) "invalidate drops everything" 0 (entries ())

let test_cache_disabled_and_bad_capacity () =
  let env = fresh_env () in
  (match Client.verify_cache_stats (Client.for_store ~ca:(ca_pub ()) ~clock:env.clock ~verify_cache:0 env.store) with
  | None -> ()
  | Some _ -> Alcotest.fail "verify_cache:0 should disable the memo");
  let fw = Worm.firmware env.store in
  match
    Client.connect ~ca:(ca_pub ()) ~clock:env.clock ~verify_cache:(-1)
      ~signing_cert:(Firmware.signing_cert fw) ~deletion_cert:(Firmware.deletion_cert fw)
      ~store_id:(Worm.store_id env.store) ()
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "negative cache capacity accepted"

(* ---------------------------------------------------------------- *)

let suite =
  [
    ("pool map matches sequential at 1-4 domains", `Quick, test_pool_map_matches_sequential);
    ("pool map_list preserves order", `Quick, test_pool_map_list);
    ("pool parallel_for covers every index", `Quick, test_pool_for);
    ("pool re-raises worker exceptions", `Quick, test_pool_exception_propagates);
    ("pool recommends at least one domain", `Quick, test_pool_recommended);
    ("lru eviction order", `Quick, test_lru_basic);
    ("lru zero capacity", `Quick, test_lru_zero_capacity);
    ("encoded_size mirrors every encoder", `Quick, test_encoded_sizes_match_encoders);
    ("parallel read verification is verdict-identical", `Quick, test_parallel_verify_identical);
    ("rsa verify_batch is verdict-identical", `Quick, test_rsa_verify_batch_identical);
    ("parallel scrub pass is report-identical", `Quick, test_parallel_scrub_identical);
    ("stale/forged bounds never ride the cache", `Quick, test_cache_rejects_stale_and_forged_bounds);
    ("migration invalidates the verify cache", `Quick, test_migration_invalidates_cache);
    ("cache disabled and invalid capacities", `Quick, test_cache_disabled_and_bad_capacity);
  ]

let () = Alcotest.run "worm_parallel" [ ("parallel", suite) ]
