(* Client/server protocol: codec roundtrips, remote verified reads, and
   man-in-the-middle resistance (an untrusted transport adds nothing to
   the untrusted host's powers). *)

open Worm_core
open Worm_testkit.Testkit
module Message = Worm_proto.Message
module Server = Worm_proto.Server
module Remote_client = Worm_proto.Remote_client
module Clock = Worm_simclock.Clock
module Codec = Worm_util.Codec

let remote_env () =
  let env = fresh_env () in
  let server = Server.create env.store in
  let transport = Server.handle_bytes server in
  (env, server, transport)

let connect_exn ?retry ?netsim env transport =
  match Remote_client.connect ~ca:(ca_pub ()) ~clock:env.clock ?retry ?netsim transport with
  | Ok rc -> rc
  | Error e -> Alcotest.fail e

(* ---------- codecs ---------- *)

let test_request_codec () =
  let cases =
    [
      Message.Hello;
      Message.Read (Serial.of_int 42);
      Message.Read_many [ Serial.of_int 1; Serial.of_int 2 ];
      Message.Audit_slice { cursor = Serial.of_int 9; max = 64 };
    ]
  in
  List.iter
    (fun r ->
      match Message.decode_request (Message.encode_request r) with
      | Ok r' -> Alcotest.(check bool) "roundtrip" true (r = r')
      | Error e -> Alcotest.fail e)
    cases;
  match Message.decode_request "\xff" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage request decoded"

let test_response_codec_all_proof_shapes () =
  (* produce one live response of every shape from a real store *)
  let env = fresh_env () in
  let long = short_policy ~retention_s:10_000. () in
  ignore (Worm.write env.store ~policy:long ~blocks:[ "anchor" ]);
  let deleted = write_n env ~retention_s:10. 4 in
  ignore (Worm.write env.store ~policy:long ~blocks:[ "anchor2" ]);
  let live = Worm.write env.store ~policy:long ~blocks:[ "alpha"; "beta" ] in
  ignore (expire_all env ~after_s:20.);
  ignore (Worm.compact_windows env.store);
  let shapes =
    [
      Worm.read env.store live (* Found *);
      Worm.read env.store (List.hd deleted) (* window or below-base or deleted *);
      Worm.read env.store (Serial.of_int 999) (* unallocated *);
      Proof.Refused "test excuse";
    ]
  in
  List.iter
    (fun response ->
      let encoded = Codec.encode Message.encode_read_response response in
      match Codec.decode Message.decode_read_response encoded with
      | Ok response' ->
          (* re-encoding must be stable (canonical) *)
          Alcotest.(check string)
            ("stable: " ^ Proof.describe response)
            encoded
            (Codec.encode Message.encode_read_response response')
      | Error e -> Alcotest.fail e)
    shapes

let test_verdict_survives_serialization () =
  (* verifying a decoded response gives the same verdict as the local one *)
  let env = fresh_env () in
  let sn = write env ~blocks:[ "payload" ] () in
  let local = Worm.read env.store sn in
  let remote =
    match Codec.decode Message.decode_read_response (Codec.encode Message.encode_read_response local) with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check string) "same verdict"
    (Client.verdict_name (Client.verify_read env.client ~sn local))
    (Client.verdict_name (Client.verify_read env.client ~sn remote))

let test_audit_slice_reply_codec () =
  let env, _server, transport = remote_env () in
  ignore (write_n env 3);
  let raw = transport (Message.encode_request (Message.Audit_slice { cursor = Serial.first; max = 8 })) in
  match Message.decode_response raw with
  | Ok (Message.Audit_slice_reply { replies; next; _ } as resp) ->
      Alcotest.(check int) "one reply per record" 3 (List.length replies);
      Alcotest.(check bool) "terminal slice" true (next = None);
      (* re-encoding must be stable (canonical) *)
      Alcotest.(check string) "stable" raw (Message.encode_response resp)
  | Ok _ -> Alcotest.fail "expected an audit-slice reply"
  | Error e -> Alcotest.fail e

(* ---------- the protocol ---------- *)

let test_handshake_and_read () =
  let env, _server, transport = remote_env () in
  let sn = write env ~blocks:[ "remote payload" ] () in
  let rc = connect_exn env transport in
  Alcotest.(check string) "store id" (Worm.store_id env.store) (Remote_client.store_id rc);
  (match Remote_client.read rc sn with
  | Client.Valid_data { blocks; _ } -> Alcotest.(check (list string)) "data" [ "remote payload" ] blocks
  | v -> Alcotest.fail (Client.verdict_name v));
  match Remote_client.read rc (Serial.of_int 50) with
  | Client.Never_written -> ()
  | v -> Alcotest.fail (Client.verdict_name v)

let test_audit_sweep () =
  let env, _server, transport = remote_env () in
  let sns = write_n env ~retention_s:10. 3 in
  let keep = write env ~policy:(short_policy ~retention_s:10_000. ()) () in
  ignore (expire_all env ~after_s:20.);
  let rc = connect_exn env transport in
  let results = Remote_client.audit_sweep rc ~lo:Serial.first ~hi:(Serial.of_int 4) in
  Alcotest.(check int) "four rows" 4 (List.length results);
  List.iter
    (fun sn ->
      match List.assoc sn results with
      | Client.Properly_deleted -> ()
      | v -> Alcotest.fail (Client.verdict_name v))
    sns;
  (match List.assoc keep results with
  | Client.Valid_data _ -> ()
  | v -> Alcotest.fail (Client.verdict_name v));
  Alcotest.(check bool) "bytes accounted" true
    (Remote_client.bytes_sent rc > 0 && Remote_client.bytes_received rc > 0)

let test_remote_full_audit_honest () =
  let env, _server, transport = remote_env () in
  (* a deleted bottom region advances the SCPU base; the audit must skip
     it wholesale (one representative probe), not read it per-record *)
  ignore (write_n env ~retention_s:10. 4);
  ignore (expire_all env ~after_s:20.);
  Worm.idle_tick env.store;
  ignore (write_n env ~retention_s:10_000. 3);
  let rc = connect_exn env transport in
  let audit = Remote_client.run_remote_audit rc in
  Alcotest.(check int) "no violations" 0 (List.length audit.Remote_client.violations);
  Alcotest.(check int) "live region scanned" 3 audit.Remote_client.scanned;
  Alcotest.(check int64) "below-base region skipped" 4L audit.Remote_client.skipped_below_base;
  Alcotest.(check bool) "batched, not per-record" true (audit.Remote_client.round_trips <= 4)

let refuse_slices transport req =
  (* a dishonest dispatcher serves audit slices but refuses every record *)
  match Message.decode_request req with
  | Ok (Message.Audit_slice _) -> begin
      match Message.decode_response (transport req) with
      | Ok (Message.Audit_slice_reply { replies; next; base; current }) ->
          let replies = List.map (fun (sn, _) -> (sn, Proof.Refused "none of your business")) replies in
          Message.encode_response (Message.Audit_slice_reply { replies; next; base; current })
      | _ -> transport req
    end
  | _ -> transport req

let test_remote_audit_catches_refusing_dispatcher () =
  let env, _server, transport = remote_env () in
  let sns = write_n env 5 in
  (* without confirming re-reads, every refused slice row is flagged *)
  let rc = connect_exn ~retry:Remote_client.no_retry env (refuse_slices transport) in
  let audit = Remote_client.run_remote_audit rc in
  Alcotest.(check int) "every refusal flagged" (List.length sns)
    (List.length audit.Remote_client.violations)

let test_refused_slices_heal_by_record_fallback () =
  (* With confirming re-reads enabled, a server lying only in its audit
     slices merely degrades the audit to per-record reads — the honest
     individual replies carry the proofs, so nothing is flagged and the
     lie costs the server extra traffic, not the auditor a false alarm. *)
  let env, _server, transport = remote_env () in
  ignore (write_n env 5);
  let rc = connect_exn env (refuse_slices transport) in
  let audit = Remote_client.run_remote_audit rc in
  Alcotest.(check int) "slice refusals healed by re-reads" 0 (List.length audit.Remote_client.violations);
  Alcotest.(check bool) "re-reads actually happened" true
    ((Remote_client.transport_stats rc).Remote_client.reverifications > 0);
  (* a dispatcher that refuses individual reads too has nowhere to hide *)
  let refuse_everything req =
    match Message.decode_request req with
    | Ok (Message.Read sn) ->
        Message.encode_response (Message.Read_reply { sn; response = Proof.Refused "go away" })
    | _ -> refuse_slices transport req
  in
  let rc2 = connect_exn env refuse_everything in
  let audit2 = Remote_client.run_remote_audit rc2 in
  Alcotest.(check int) "refusing everything is flagged per record" 5
    (List.length audit2.Remote_client.violations)

let test_remote_audit_catches_stalling_cursor () =
  let env, _server, transport = remote_env () in
  ignore (write_n env 3);
  (* a server steering the resume cursor backwards is stalling the walk *)
  let evil req =
    match Message.decode_request req with
    | Ok (Message.Audit_slice _) -> begin
        match Message.decode_response (transport req) with
        | Ok (Message.Audit_slice_reply { replies; next = _; base; current }) ->
            Message.encode_response
              (Message.Audit_slice_reply { replies; next = Some Serial.first; base; current })
        | _ -> transport req
      end
    | _ -> transport req
  in
  let rc = connect_exn env evil in
  let audit = Remote_client.run_remote_audit rc in
  Alcotest.(check bool) "stall flagged as a violation" true (audit.Remote_client.violations <> [])

let test_handshake_against_wrong_ca () =
  let env, _server, transport = remote_env () in
  ignore env;
  let other_ca = Worm_crypto.Rsa.public_of (Worm_crypto.Rsa.generate rng ~bits:512) in
  match Remote_client.connect ~ca:other_ca ~clock:env.clock transport with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "foreign CA accepted over the wire"

(* ---------- adversarial transports ---------- *)

let flip_byte i s =
  if String.length s <= i then s
  else begin
    let b = Bytes.of_string s in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
    Bytes.to_string b
  end

let test_mitm_bitflip_detected () =
  let env, _server, transport = remote_env () in
  let sn = write env ~blocks:[ "sensitive" ] () in
  let rc = connect_exn env transport in
  (* sanity: clean read works *)
  (match Remote_client.read rc sn with
  | Client.Valid_data _ -> ()
  | v -> Alcotest.fail (Client.verdict_name v));
  (* now flip a byte somewhere in every read response (the handshake is
     left alone so the connection establishes) *)
  let evil_transport req =
    match Message.decode_request req with
    | Ok Message.Hello -> transport req
    | _ -> flip_byte 40 (transport req)
  in
  let rc_evil = connect_exn env evil_transport in
  match Remote_client.read rc_evil sn with
  | Client.Violation _ -> ()
  | v -> Alcotest.fail ("bitflip accepted: " ^ Client.verdict_name v)

let test_mitm_response_substitution_detected () =
  let env, _server, transport = remote_env () in
  let sn_a = write env ~blocks:[ "record A" ] () in
  let sn_b = write env ~blocks:[ "record B" ] () in
  let rc_evil =
    connect_exn env (fun req ->
        (* answer every read with record A's (valid!) reply *)
        match Message.decode_request req with
        | Ok (Message.Read _) -> transport (Message.encode_request (Message.Read sn_a))
        | _ -> transport req)
  in
  match Remote_client.read rc_evil sn_b with
  | Client.Violation _ -> () (* either wrong-serial inside the verdict or reply-sn mismatch *)
  | v -> Alcotest.fail ("substitution accepted: " ^ Client.verdict_name v)

let test_mitm_garbage_and_drop () =
  let env, _server, transport = remote_env () in
  let sn = write env () in
  let rc = connect_exn env transport in
  ignore rc;
  let rc_garbage = connect_exn env (fun req -> if String.length req > 2 then "garbage" else transport req) in
  (match Remote_client.read rc_garbage sn with
  | Client.Violation [ Client.Absence_unproven ] -> ()
  | v -> Alcotest.fail ("garbage accepted: " ^ Client.verdict_name v));
  (* protocol errors likewise prove nothing *)
  let rc_err =
    connect_exn env (fun req ->
        match Message.decode_request req with
        | Ok Message.Hello -> transport req
        | _ -> Message.encode_response (Message.Protocol_error "server on fire"))
  in
  match Remote_client.read rc_err sn with
  | Client.Violation [ Client.Absence_unproven ] -> ()
  | v -> Alcotest.fail ("error reply accepted: " ^ Client.verdict_name v)

(* ---------- exception safety & retries ---------- *)

exception Boom

(* A transport that works until the [n]-th call (1-based), then raises
   on every call from there on. *)
let raising_after n transport =
  let calls = ref 0 in
  fun req ->
    incr calls;
    if !calls >= n then raise Boom else transport req

let test_raising_transport_never_escapes () =
  let env, _server, transport = remote_env () in
  let sn = write env ~blocks:[ "survives" ] () in
  (* the handshake survives; every later call raises; no retry budget *)
  let rc = connect_exn ~retry:Remote_client.no_retry env (raising_after 2 transport) in
  (match Remote_client.read rc sn with
  | Client.Violation [ Client.Absence_unproven ] -> ()
  | v -> Alcotest.fail ("raising transport leaked a verdict: " ^ Client.verdict_name v)
  | exception e -> Alcotest.fail ("exception escaped roundtrip: " ^ Printexc.to_string e));
  (match Remote_client.audit_sweep rc ~lo:sn ~hi:sn with
  | [ (_, Client.Violation [ Client.Absence_unproven ]) ] -> ()
  | _ -> Alcotest.fail "sweep over a raising transport"
  | exception e -> Alcotest.fail ("exception escaped audit_sweep: " ^ Printexc.to_string e));
  let stats = Remote_client.transport_stats rc in
  Alcotest.(check bool) "faults counted" true (stats.Remote_client.faults >= 2);
  (* a transport that raises during the handshake yields Error, not an
     exception *)
  match Remote_client.connect ~ca:(ca_pub ()) ~clock:env.clock (raising_after 1 transport) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "connect over a dead transport succeeded"
  | exception e -> Alcotest.fail ("exception escaped connect: " ^ Printexc.to_string e)

let test_transient_fault_retried () =
  let env, _server, transport = remote_env () in
  let sn = write env ~blocks:[ "flaky" ] () in
  (* raise on exactly one mid-stream call: the default retry rides it out *)
  let calls = ref 0 in
  let flaky req =
    incr calls;
    if !calls = 3 then raise Boom else transport req
  in
  let rc = connect_exn env flaky in
  (match Remote_client.read rc sn with
  | Client.Valid_data _ -> ()
  | v -> Alcotest.fail ("one fault defeated the retry policy: " ^ Client.verdict_name v));
  (match Remote_client.read rc sn with
  | Client.Valid_data _ -> ()
  | v -> Alcotest.fail (Client.verdict_name v));
  let stats = Remote_client.transport_stats rc in
  Alcotest.(check int) "one retry" 1 stats.Remote_client.retries;
  Alcotest.(check int) "one fault" 1 stats.Remote_client.faults;
  Alcotest.(check bool) "virtual wait charged, not slept" true
    (Int64.compare stats.Remote_client.waited_ns 0L > 0)

let test_handshake_bytes_accounted () =
  let env, _server, transport = remote_env () in
  ignore (write env ());
  let net = Worm_proto.Netsim.create () in
  let rc = connect_exn ~netsim:net env (Worm_proto.Netsim.wrap net transport) in
  (* regression: the Hello reply used to be dropped from bytes_received *)
  Alcotest.(check bool) "handshake reply counted" true (Remote_client.bytes_received rc > 0);
  Alcotest.(check int) "client ledger matches the wire after the handshake"
    (Worm_proto.Netsim.bytes_transferred net)
    (Remote_client.bytes_sent rc + Remote_client.bytes_received rc);
  ignore (Remote_client.read rc (Serial.of_int 1));
  ignore (Remote_client.audit_sweep rc ~lo:Serial.first ~hi:(Serial.of_int 1));
  Alcotest.(check int) "ledgers still agree after traffic"
    (Worm_proto.Netsim.bytes_transferred net)
    (Remote_client.bytes_sent rc + Remote_client.bytes_received rc)

let test_netsim_charges_on_raise () =
  let net = Worm_proto.Netsim.create ~rtt_ns:1_000_000L () in
  let wrapped = Worm_proto.Netsim.wrap net (fun _ -> raise Boom) in
  (match wrapped "a request crossing the wire" with
  | _ -> Alcotest.fail "raising transport returned"
  | exception Boom -> ());
  (* regression: a raising transport used to charge nothing *)
  Alcotest.(check int) "request counted" 1 (Worm_proto.Netsim.requests net);
  Alcotest.(check int) "request bytes billed" (String.length "a request crossing the wire")
    (Worm_proto.Netsim.bytes_transferred net);
  Alcotest.(check bool) "RTT billed" true
    (Int64.compare (Worm_proto.Netsim.elapsed_ns net) 1_000_000L >= 0)

let test_duplicate_sns_in_reply_detected () =
  let env, _server, transport = remote_env () in
  let sn_a = write env ~blocks:[ "A" ] () in
  let sn_b = write env ~blocks:[ "B" ] () in
  (* a malicious reply answers sn_b twice: once honestly, then with a
     conflicting refusal appended — List.assoc reassembly would have
     trusted whichever came first *)
  let evil req =
    match Message.decode_request req with
    | Ok (Message.Read_many _) -> begin
        match Message.decode_response (transport req) with
        | Ok (Message.Read_many_reply replies) ->
            let dup = (sn_b, Proof.Refused "second opinion") in
            Message.encode_response (Message.Read_many_reply (replies @ [ dup ]))
        | _ -> transport req
      end
    | _ -> transport req
  in
  let rc = connect_exn ~retry:Remote_client.no_retry env evil in
  let results = Remote_client.audit_sweep rc ~lo:sn_a ~hi:sn_b in
  (match List.assoc sn_a results with
  | Client.Valid_data _ -> ()
  | v -> Alcotest.fail ("clean row damaged: " ^ Client.verdict_name v));
  (match List.assoc sn_b results with
  | Client.Violation [ Client.Absence_unproven ] -> ()
  | v -> Alcotest.fail ("duplicated SN trusted: " ^ Client.verdict_name v));
  (* with confirming re-reads, the honest per-record path heals the row *)
  let rc2 = connect_exn env evil in
  match List.assoc sn_b (Remote_client.audit_sweep rc2 ~lo:sn_a ~hi:sn_b) with
  | Client.Valid_data _ -> ()
  | v -> Alcotest.fail ("re-read did not heal the duplicate: " ^ Client.verdict_name v)

(* ---------- network accounting ---------- *)

let test_batching_amortizes_round_trips () =
  let env, _server, transport = remote_env () in
  let sns = write_n env 20 in
  let lo = List.hd sns and hi = List.nth sns 19 in
  (* one-by-one *)
  let net1 = Worm_proto.Netsim.create ~rtt_ns:1_000_000L () in
  let rc1 = connect_exn env (Worm_proto.Netsim.wrap net1 transport) in
  List.iter (fun sn -> ignore (Remote_client.read rc1 sn)) sns;
  (* batched *)
  let net2 = Worm_proto.Netsim.create ~rtt_ns:1_000_000L () in
  let rc2 = connect_exn env (Worm_proto.Netsim.wrap net2 transport) in
  ignore (Remote_client.audit_sweep rc2 ~lo ~hi);
  Alcotest.(check int) "per-record: 21 round trips" 21 (Worm_proto.Netsim.requests net1);
  Alcotest.(check int) "batched: 2 round trips" 2 (Worm_proto.Netsim.requests net2);
  Alcotest.(check bool) "batching wins on wire time" true
    (Worm_proto.Netsim.elapsed_ns net2 < Worm_proto.Netsim.elapsed_ns net1);
  (* the payload bytes are about the same either way *)
  let b1 = Worm_proto.Netsim.bytes_transferred net1 and b2 = Worm_proto.Netsim.bytes_transferred net2 in
  Alcotest.(check bool) "similar byte volume" true (float_of_int b2 /. float_of_int b1 > 0.8)

let prop_request_codec_total =
  QCheck.Test.make ~name:"request decoder total on random bytes" ~count:300 QCheck.string (fun s ->
      match Message.decode_request s with
      | Ok _ | Error _ -> true)

let prop_response_codec_total =
  QCheck.Test.make ~name:"response decoder total on random bytes" ~count:300 QCheck.string (fun s ->
      match Message.decode_response s with
      | Ok _ | Error _ -> true)

(* ---------- encode-once memo ---------- *)

let decode_response_exn raw =
  match Message.decode_response raw with Ok r -> r | Error e -> Alcotest.fail e

(* The memo must be an optimization, never an oracle of its own: warm
   bytes must equal cold bytes, and once the store moves — a write
   advances the bound, a heartbeat re-signs it — the memoised encoding
   of the old artifact must never be served again. An attacker who could
   pin the server on a stale cached bound would shrink the audited
   region. *)
let test_encode_memo_identity_and_invalidation () =
  let env, server, transport = remote_env () in
  ignore (write_n env 3);
  let probe = Serial.of_int 4 (* one past the allocated region *) in
  let req = Message.encode_request (Message.Read probe) in
  let cold = transport req in
  let warm = transport req in
  Alcotest.(check string) "warm bytes = cold bytes" cold warm;
  let stale_bound =
    match decode_response_exn cold with
    | Message.Read_reply { response = Proof.Proof_unallocated b; _ } -> b
    | _ -> Alcotest.fail "expected an unallocated proof"
  in
  Alcotest.(check int64) "bound covers the 3 writes" 3L (Serial.to_int64 stale_bound.Firmware.sn);
  (* verifier agrees with the locally-served proof, through the memo *)
  (match decode_response_exn warm with
  | Message.Read_reply { sn; response } ->
      Alcotest.(check string) "verdict through memo"
        (Client.verdict_name (Client.verify_read env.client ~sn (Worm.read env.store probe)))
        (Client.verdict_name (Client.verify_read env.client ~sn response))
  | _ -> Alcotest.fail "expected a read reply");
  (* the attack: allocate [probe], then ask again — the reply must be
     the record, not the memoised absence proof *)
  let sn = write env ~blocks:[ "now it exists" ] () in
  Alcotest.(check int64) "probe got allocated" (Serial.to_int64 probe) (Serial.to_int64 sn);
  (match decode_response_exn (transport req) with
  | Message.Read_reply { sn; response = Proof.Found _ as response } -> begin
      match Client.verify_read env.client ~sn response with
      | Client.Valid_data { blocks; _ } ->
          Alcotest.(check (list string)) "served the new record" [ "now it exists" ] blocks
      | v -> Alcotest.fail ("served record does not verify: " ^ Client.verdict_name v)
    end
  | _ -> Alcotest.fail "stale absence proof served for an allocated serial");
  (* a re-signed bound (heartbeat after clock advance) must also flush
     the memo: the next unallocated proof carries the fresh signature *)
  let probe' = Serial.of_int 99 in
  let req' = Message.encode_request (Message.Read probe') in
  let b1 =
    match decode_response_exn (transport req') with
    | Message.Read_reply { response = Proof.Proof_unallocated b; _ } -> b
    | _ -> Alcotest.fail "expected an unallocated proof"
  in
  Clock.advance env.clock (Clock.ns_of_sec 3600.);
  Worm.heartbeat env.store;
  ignore server;
  let b2 =
    match decode_response_exn (transport req') with
    | Message.Read_reply { response = Proof.Proof_unallocated b; _ } -> b
    | _ -> Alcotest.fail "expected an unallocated proof"
  in
  Alcotest.(check bool) "re-signed bound is served, not the cached one" true
    (Int64.compare b2.Firmware.timestamp b1.Firmware.timestamp > 0)

let suite =
  [
    ("request codec", `Quick, test_request_codec);
    ("response codec, all proof shapes", `Quick, test_response_codec_all_proof_shapes);
    ("verdict survives serialization", `Quick, test_verdict_survives_serialization);
    ("audit-slice reply codec", `Quick, test_audit_slice_reply_codec);
    ("handshake and read", `Quick, test_handshake_and_read);
    ("audit sweep", `Quick, test_audit_sweep);
    ("remote full audit, honest server", `Quick, test_remote_full_audit_honest);
    ("remote audit catches refusing dispatcher", `Quick, test_remote_audit_catches_refusing_dispatcher);
    ("refused slices heal by per-record fallback", `Quick, test_refused_slices_heal_by_record_fallback);
    ("raising transport never escapes", `Quick, test_raising_transport_never_escapes);
    ("transient fault retried", `Quick, test_transient_fault_retried);
    ("handshake bytes accounted", `Quick, test_handshake_bytes_accounted);
    ("netsim charges on raise", `Quick, test_netsim_charges_on_raise);
    ("duplicate SNs in reply detected", `Quick, test_duplicate_sns_in_reply_detected);
    ("remote audit catches stalling cursor", `Quick, test_remote_audit_catches_stalling_cursor);
    ("wrong CA over the wire", `Quick, test_handshake_against_wrong_ca);
    ("MITM bitflip detected", `Quick, test_mitm_bitflip_detected);
    ("MITM substitution detected", `Quick, test_mitm_response_substitution_detected);
    ("MITM garbage/drop yields no proof", `Quick, test_mitm_garbage_and_drop);
    ("batching amortizes round trips", `Quick, test_batching_amortizes_round_trips);
    ("encode memo: identity and invalidation", `Quick, test_encode_memo_identity_and_invalidation);
    QCheck_alcotest.to_alcotest prop_request_codec_total;
    QCheck_alcotest.to_alcotest prop_response_codec_total;
  ]

let () = Alcotest.run "worm_proto" [ ("proto", suite) ]
