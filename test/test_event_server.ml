(* The async event server and the protocol-path bugfix sweep: netsim
   rounding, deferred early-exit, server-side request caps, batch
   witness identity, cross-client batching, debt backpressure, and the
   faulty multi-client run converging to the sequential store. *)

open Worm_core
open Worm_testkit.Testkit
module Message = Worm_proto.Message
module Server = Worm_proto.Server
module Netsim = Worm_proto.Netsim
module Event_server = Worm_proto.Event_server
module Firmware = Worm_core.Firmware
module Sim = Worm_sim.Sim

(* ---------- Netsim billing rounds to nearest (was: truncated) ---------- *)

let test_netsim_rounding () =
  (* 1 Gbit/s default: one byte is exactly 8 ns *)
  let net = Netsim.create () in
  Alcotest.(check int64) "1B at default bandwidth" 8L (Netsim.transfer_ns net ~bytes:1);
  (* 400 MB/s: one byte is 2.5 ns — must round to 3, not truncate to 2 *)
  let net = Netsim.create ~rtt_ns:0L ~bandwidth_bytes_per_sec:400e6 () in
  Alcotest.(check int64) "rounds to nearest" 3L (Netsim.transfer_ns net ~bytes:1);
  (* the exchange ledger uses the rounded figure: a 1B request + 1B
     reply (2 bytes, 5 ns exactly) over a zero-RTT wire *)
  ignore (Netsim.wrap net Fun.id "x");
  Alcotest.(check int64) "wrap bills rounded transfer" 5L (Netsim.elapsed_ns net);
  let net = Netsim.create ~rtt_ns:1_000_000L ~bandwidth_bytes_per_sec:400e6 () in
  Alcotest.(check int64) "one-way = rtt/2 + transfer" 500_003L (Netsim.one_way_ns net ~bytes:1)

(* ---------- Deferred.overdue early-exits but answers like the fold ---------- *)

let prop_overdue_matches_naive =
  QCheck.Test.make ~name:"overdue equals naive full filter" ~count:300
    QCheck.(pair (small_list (pair small_nat small_nat)) small_nat)
    (fun (pairs, now) ->
      let t = Deferred.create () in
      List.iter (fun (sn, d) -> Deferred.push t ~sn:(Serial.of_int (sn + 1)) ~deadline:(Int64.of_int d)) pairs;
      let now = Int64.of_int now in
      let naive = List.filter (fun e -> Int64.compare e.Deferred.deadline now < 0) (Deferred.to_list t) in
      Deferred.overdue t ~now = naive)

(* ---------- server-side request caps ---------- *)

let capped_server env = Server.create ~limits:{ Server.max_read_many = 3; max_audit_slice = 2 } env.store

let test_read_many_cap () =
  let env = fresh_env ~disk_latency:Worm_simdisk.Disk.fast_latency () in
  let sns = write_n env 4 in
  let server = capped_server env in
  let disk_before = Worm_simdisk.Disk.busy_ns env.disk in
  (match Server.handle server (Message.Read_many (sns @ sns)) with
  | Message.Protocol_error _ ->
      (* refused before any per-SN work: the oversized frame bought no
         disk time it could use to monopolize the event loop *)
      Alcotest.(check int64) "no per-SN work done" disk_before (Worm_simdisk.Disk.busy_ns env.disk)
  | r -> Alcotest.fail ("expected Protocol_error, got " ^ Message.describe_response r));
  match Server.handle server (Message.Read_many [ List.hd sns ]) with
  | Message.Read_many_reply [ _ ] -> ()
  | r -> Alcotest.fail ("expected 1-entry reply, got " ^ Message.describe_response r)

let test_audit_slice_clamp () =
  let env = fresh_env () in
  let sns = write_n env 7 in
  let server = capped_server env in
  Server.refresh server;
  (* a hostile max cannot pin the loop: replies are clamped, and the
     truncated reply still lets an honest auditor walk to completion *)
  let rec sweep cursor covered rounds =
    if rounds > 100 then Alcotest.fail "audit made no progress"
    else begin
      match Server.handle server (Message.Audit_slice { cursor; max = max_int }) with
      | Message.Audit_slice_reply { replies; next; _ } -> begin
          Alcotest.(check bool) "clamped" true (List.length replies <= 2);
          match next with
          | Some sn -> sweep sn (covered + List.length replies) (rounds + 1)
          | None -> covered + List.length replies
        end
      | r -> Alcotest.fail ("expected audit reply, got " ^ Message.describe_response r)
    end
  in
  Alcotest.(check int) "every live record covered" (List.length sns) (sweep Serial.first 0 0)

(* ---------- Audit_slice dispatch is pure (was: heartbeat inside handle) ---------- *)

let test_audit_slice_handle_pure () =
  let env = fresh_env () in
  ignore (write_n env 5);
  let server = Server.create env.store in
  (* writes moved the SCPU counter past the cached bound — exactly the
     state where dispatch used to heartbeat behind the caller's back *)
  let before = (Worm_scpu.Device.stats env.device).Worm_scpu.Device.sign_calls in
  let req = Message.Audit_slice { cursor = Serial.first; max = 16 } in
  let r1 = Server.handle server req in
  Alcotest.(check int) "pure dispatch signs nothing" before
    (Worm_scpu.Device.stats env.device).Worm_scpu.Device.sign_calls;
  let r2 = Server.handle server req in
  Alcotest.(check bool) "replay serves identical reply" true (r1 = r2);
  (* the full path heals staleness once, then replays stay byte-identical
     even across a (sub-heartbeat) clock advance *)
  let bytes = Message.encode_request req in
  let first = Server.handle_bytes server bytes in
  Clock.advance env.clock (Clock.ns_of_sec 1.);
  let replay = Server.handle_bytes server bytes in
  Alcotest.(check bool) "handle_bytes replay identical across clock advance" true (first = replay)

(* ---------- batch-witnessed writes are byte-identical to single ---------- *)

let test_batch_witness_identity () =
  (* same seed AND same name: the name feeds the store_id inside every
     signed statement, so distinct names would hide a witness diff *)
  let mk () =
    let clock = Clock.create () in
    let device =
      Worm_scpu.Device.provision ~seed:"batch-vs-single" ~clock ~ca:(Lazy.force ca)
        ~config:Worm_scpu.Device.test_config ~name:"batch-scpu" ()
    in
    Worm.create ~device ~ca:(ca_pub ()) ()
  in
  let policy = short_policy () in
  let entries = List.init 5 (fun i -> (policy, [ Printf.sprintf "block-%d" i ])) in
  (* strong RSA witnessing is deterministic, so batching must be
     invisible on disk: same devices, same records, same bytes.
     (Weak certs are minted per signing call, so only verification
     equivalence — checked below — is promised for deferred modes.) *)
  let s_single = mk () in
  let sns_single = List.map (fun (policy, blocks) -> Worm.write ~witness:Firmware.Strong_now s_single ~policy ~blocks) entries in
  let s_batch = mk () in
  let sns_batch = Worm.write_batch ~witness:Firmware.Strong_now s_batch entries in
  Alcotest.(check (list int)) "same serials"
    (List.map Serial.to_int sns_single)
    (List.map Serial.to_int sns_batch);
  List.iter2
    (fun a b ->
      match (Worm.read s_single a, Worm.read s_batch b) with
      | Proof.Found { vrd = v1; _ }, Proof.Found { vrd = v2; _ } ->
          Alcotest.(check bool) "vrd byte-identical" true (Vrd.to_bytes v1 = Vrd.to_bytes v2)
      | _ -> Alcotest.fail "expected Found on both stores")
    sns_single sns_batch;
  (* and a real client accepts weak batch-witnessed records too *)
  let s_weak = mk () in
  let sns_weak = Worm.write_batch ~witness:Firmware.Weak_deferred s_weak entries in
  let clock = Clock.create () in
  let verifier = Client.for_store ~ca:(ca_pub ()) ~clock s_weak in
  List.iter
    (fun sn ->
      match Client.verify_read verifier ~sn (Worm.read s_weak sn) with
      | Client.Violation vs ->
          Alcotest.fail
            ("batch-witnessed record rejected: " ^ String.concat "," (List.map Client.violation_to_string vs))
      | _ -> ())
    sns_weak

(* ---------- the event server itself ---------- *)

let es_fixture ?(config = Event_server.default_config) ?ingress () =
  let env = fresh_env () in
  let server = Server.create env.store in
  let net = Netsim.create () in
  (env, Event_server.create ~config ?ingress ~clock:env.clock ~net server)

let test_event_server_batches () =
  let config = { Event_server.default_config with batch_size = 4 } in
  let env, es = es_fixture ~config () in
  let policy = short_policy () in
  let acked = ref [] and found = ref 0 in
  for i = 0 to 9 do
    Event_server.submit es ~client:i
      ~at:(Int64.mul (Int64.of_int i) (Clock.ns_of_ms 0.1))
      (Message.Write { policy; tenant = ""; blocks = [ Printf.sprintf "c%d" i ] })
      ~on_reply:(fun c ->
        match c.Event_server.outcome with
        | Event_server.Replied (Message.Write_ack { sn }) ->
            acked := sn :: !acked;
            Event_server.submit es ~client:i ~at:c.Event_server.delivered_ns (Message.Read sn)
              ~on_reply:(fun rc ->
                match rc.Event_server.outcome with
                | Event_server.Replied (Message.Read_reply { response = Proof.Found _; _ }) -> incr found
                | _ -> ())
        | _ -> ())
  done;
  Event_server.run es;
  let stats = Event_server.stats es in
  Alcotest.(check int) "all writes acked" 10 (List.length !acked);
  Alcotest.(check int) "all reads found their record" 10 !found;
  Alcotest.(check int) "all writes went through batches" 10 stats.Event_server.batched_writes;
  Alcotest.(check bool) "coalesced into few flushes" true (stats.Event_server.flushes <= 3);
  Alcotest.(check int) "serials are consecutive" 10 (List.length (List.sort_uniq Serial.compare !acked));
  ignore env

let test_event_server_backpressure () =
  (* ceiling 0 with deferred witnesses: every write after the first
     flush finds debt outstanding, gets shed with Busy, and its shed
     slot strengthens the backlog — so the retry is admitted *)
  let config =
    {
      Event_server.default_config with
      batch_size = 32;
      debt_ceiling = 0;
      witness = Event_server.Fixed Firmware.Weak_deferred;
    }
  in
  let env, es = es_fixture ~config () in
  let policy = short_policy () in
  let acked = ref 0 in
  for i = 0 to 5 do
    Event_server.submit es ~client:i
      ~at:(Int64.mul (Int64.of_int i) (Clock.ns_of_ms 5.))
      (Message.Write { policy; tenant = ""; blocks = [ Printf.sprintf "c%d" i ] })
      ~on_reply:(fun c ->
        match c.Event_server.outcome with
        | Event_server.Replied (Message.Write_ack _) -> incr acked
        | _ -> ())
  done;
  Event_server.run es;
  let stats = Event_server.stats es in
  Alcotest.(check int) "every shed write eventually landed" 6 !acked;
  Alcotest.(check bool) "admission control shed under debt" true (stats.Event_server.shed > 0);
  Alcotest.(check bool) "shed slots repaid debt" true (stats.Event_server.strengthened > 0);
  (* every shed slot drained the ledger before the next admission; only
     the final flush's own (not-yet-shed-against) entry may remain *)
  Alcotest.(check bool) "backpressure drained the ledger" true (Worm.deferred_length env.store <= 1)

(* ---------- multi-client: faulty batched run == sequential run ---------- *)

let test_multi_client_convergence () =
  let phases =
    [
      { Sim.label = "burst"; rate_per_sec = 2000.; duration_s = 0.02 };
      { Sim.label = "steady"; rate_per_sec = 200.; duration_s = 0.1 };
    ]
  in
  let r = Sim.multi_client ~phases ~fault_rate:0.1 ~batch_size:8 ~strong_bits:512 ~seed:"test-mc" () in
  Alcotest.(check int) "no client gave up" 0 r.Sim.mc_gave_up;
  Alcotest.(check int) "every write acked" r.Sim.mc_clients r.Sim.mc_writes_acked;
  Alcotest.(check int) "every read-after-write verified" r.Sim.mc_clients r.Sim.mc_reads_ok;
  Alcotest.(check bool) "verdict fingerprint identical to sequential" true r.Sim.mc_fingerprint_match;
  Alcotest.(check bool) "batching reduced signing invocations" true
    (r.Sim.mc_sign_calls < r.Sim.mc_baseline_sign_calls)

let () =
  Alcotest.run "worm_event_server"
    [
      ( "bugfixes",
        [
          Alcotest.test_case "netsim rounds transfer time" `Quick test_netsim_rounding;
          QCheck_alcotest.to_alcotest prop_overdue_matches_naive;
          Alcotest.test_case "read-many capped server-side" `Quick test_read_many_cap;
          Alcotest.test_case "audit-slice max clamped" `Quick test_audit_slice_clamp;
          Alcotest.test_case "audit-slice dispatch is pure" `Quick test_audit_slice_handle_pure;
          Alcotest.test_case "batch witnesses byte-identical" `Quick test_batch_witness_identity;
        ] );
      ( "event-server",
        [
          Alcotest.test_case "cross-client write batching" `Quick test_event_server_batches;
          Alcotest.test_case "debt-ceiling backpressure" `Quick test_event_server_backpressure;
          Alcotest.test_case "faulty multi-client converges" `Quick test_multi_client_convergence;
        ] );
    ]
