(* Host restarts: the SCPU's NVRAM state and the disk survive; the
   host-side bookkeeping round-trips through a blob. Restoring stale or
   corrupted blobs must never create client-invisible damage. *)

open Worm_core
open Worm_testkit.Testkit
module Clock = Worm_simclock.Clock
module Disk = Worm_simdisk.Disk

let reboot ?config env =
  let blob = Worm.save_host_state env.store in
  match Worm.restore ?config ~firmware:(Worm.firmware env.store) ~disk:env.disk ~host_state:blob () with
  | Ok store -> { env with store }
  | Error e -> Alcotest.fail e

let test_roundtrip_reads () =
  let env = fresh_env () in
  let live = write_n env ~retention_s:10_000. 3 in
  let dead = write_n env ~retention_s:10. 2 in
  ignore (expire_all env ~after_s:20.);
  let env' = reboot env in
  List.iter (fun sn -> check_verdict "live after reboot" "valid-data" env' sn) live;
  List.iter (fun sn -> check_verdict "deleted after reboot" "properly-deleted" env' sn) dead;
  check_verdict "unallocated after reboot" "never-written" env' (Serial.of_int 99)

let test_windows_survive () =
  let env = fresh_env () in
  let long = short_policy ~retention_s:10_000. () in
  ignore (Worm.write env.store ~policy:long ~blocks:[ "anchor" ]);
  let middle = write_n env ~retention_s:10. 4 in
  ignore (Worm.write env.store ~policy:long ~blocks:[ "anchor" ]);
  ignore (expire_all env ~after_s:20.);
  ignore (Worm.compact_windows env.store);
  Alcotest.(check int) "window formed" 1 (List.length (Worm.deletion_windows env.store));
  let env' = reboot env in
  Alcotest.(check int) "window survives" 1 (List.length (Worm.deletion_windows env'.store));
  List.iter (fun sn -> check_verdict "window proof after reboot" "properly-deleted" env' sn) middle

let test_store_continues_after_reboot () =
  let env = fresh_env () in
  let before = write env ~blocks:[ "before" ] () in
  let env' = reboot env in
  (* writes continue with the SCPU's serial counter, no gaps, no reuse *)
  let after = Worm.write env'.store ~policy:(short_policy ()) ~blocks:[ "after" ] in
  Alcotest.(check int64) "serials continue" (Int64.add (Serial.to_int64 before) 1L) (Serial.to_int64 after);
  check_verdict "old record fine" "valid-data" env' before;
  check_verdict "new record fine" "valid-data" env' after;
  (* and the RM still knows the schedule (it lives in the SCPU) *)
  ignore (expire_all env' ~after_s:200.);
  check_verdict "expiry still enforced" "properly-deleted" env' before

let test_deferred_and_audits_survive () =
  let config = { Worm.default_config with Worm.datasig_mode = Worm.Host_hash } in
  let env = fresh_env ~config () in
  let sns = write_n env ~witness:Worm_core.Firmware.Weak_deferred 3 in
  Alcotest.(check int) "deferred before" 3 (List.length (Worm.deferred_backlog env.store));
  let env' = reboot ~config env in
  Alcotest.(check int) "deferred after reboot" 3 (List.length (Worm.deferred_backlog env'.store));
  Alcotest.(check int) "audits after reboot" 3 (List.length (Worm.audit_backlog env'.store));
  Worm.idle_tick env'.store;
  Alcotest.(check int) "all strengthened" 0 (List.length (Worm.deferred_backlog env'.store));
  List.iter (fun sn -> check_verdict "verifiable" "valid-data" env' sn) sns

let test_dedup_refcounts_rebuilt () =
  let config = { Worm.default_config with Worm.dedup = true } in
  let env = fresh_env ~config () in
  let shared = String.make 2000 'S' in
  let sn1 = write env ~policy:(short_policy ~retention_s:10. ()) ~blocks:[ shared ] () in
  let sn2 = write env ~policy:(short_policy ~retention_s:10_000. ()) ~blocks:[ shared ] () in
  let env' = reboot ~config env in
  (match Worm.dedup_stats env'.store with
  | Some s ->
      Alcotest.(check int) "one unique block" 1 s.Dedup_store.unique_blocks;
      Alcotest.(check int) "two references" 2 s.Dedup_store.logical_blocks
  | None -> Alcotest.fail "dedup missing after restore");
  (* deleting one still leaves the shared block for the other *)
  ignore (expire_all env' ~after_s:20.);
  check_verdict "first deleted" "properly-deleted" env' sn1;
  check_verdict "second intact" "valid-data" env' sn2

let test_corrupt_blob_rejected () =
  let env = fresh_env () in
  ignore (write env ());
  let blob = Worm.save_host_state env.store in
  (match Worm.restore ~firmware:(Worm.firmware env.store) ~disk:env.disk ~host_state:"garbage" () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage blob accepted");
  let truncated = String.sub blob 0 (String.length blob / 2) in
  match Worm.restore ~firmware:(Worm.firmware env.store) ~disk:env.disk ~host_state:truncated () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated blob accepted"

let test_stale_blob_is_rollback () =
  (* Restoring an old blob = the rollback attack: the SCPU's counter has
     moved on, so the omission is detectable. *)
  let env = fresh_env () in
  ignore (write env ());
  let stale_blob = Worm.save_host_state env.store in
  let regretted = write env ~blocks:[ "written after the backup" ] () in
  Clock.advance env.clock (Clock.ns_of_min 6.);
  match Worm.restore ~firmware:(Worm.firmware env.store) ~disk:env.disk ~host_state:stale_blob () with
  | Error e -> Alcotest.fail e
  | Ok rolled_back ->
      let env' = { env with store = rolled_back } in
      (match verdict env' regretted with
      | Client.Violation _ -> ()
      | v -> Alcotest.failf "stale restore hid a record: %s" (Client.verdict_name v))

let test_corrupt_audit_checkpoint_restarts () =
  (* A damaged scrub cursor must never cause a region to be silently
     skipped: any corruption degrades to a fresh pass from the bottom of
     the SN space, reported as an error. *)
  let module Scrubber = Worm_audit.Scrubber in
  let env = fresh_env () in
  ignore (write_n env ~retention_s:10_000. 6);
  let config = { Scrubber.default_config with Scrubber.max_records_per_slice = 2 } in
  let s = Scrubber.create ~config ~store:env.store ~client:env.client () in
  ignore (Scrubber.run_slice s);
  let blob = Scrubber.save_state s in
  (match Scrubber.load_state s "garbage" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "garbage checkpoint accepted");
  Alcotest.(check int64) "cursor reset to SN base" (Serial.to_int64 Serial.first)
    (Serial.to_int64 (Scrubber.cursor s));
  let s2 = Scrubber.create ~config ~store:env.store ~client:env.client () in
  (match Scrubber.load_state s2 (String.sub blob 0 (String.length blob / 2)) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "truncated checkpoint accepted");
  Alcotest.(check int64) "cursor reset to SN base" (Serial.to_int64 Serial.first)
    (Serial.to_int64 (Scrubber.cursor s2));
  (* a checkpoint from a different store must not resume either *)
  let other = fresh_env () in
  ignore (write_n other 2);
  let s3 = Scrubber.create ~config ~store:other.store ~client:other.client () in
  (match Scrubber.load_state s3 blob with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "foreign checkpoint accepted");
  (* the degraded restart still completes a full clean pass from scratch *)
  let report = Scrubber.run_pass s2 in
  Alcotest.(check bool) "clean" true (Worm_audit.Report.clean report);
  Alcotest.(check int) "full coverage from the bottom" 6 report.Worm_audit.Report.records_scanned

let prop_blob_roundtrip_stable =
  QCheck.Test.make ~name:"blob roundtrip is stable" ~count:10 QCheck.(int_bound 8) (fun n ->
      let env = fresh_env () in
      ignore (write_n env (n + 1));
      let blob = Worm.save_host_state env.store in
      match Worm.restore ~firmware:(Worm.firmware env.store) ~disk:env.disk ~host_state:blob () with
      | Error _ -> false
      | Ok store' -> String.equal blob (Worm.save_host_state store'))

let suite =
  [
    ("reads roundtrip", `Quick, test_roundtrip_reads);
    ("windows survive", `Quick, test_windows_survive);
    ("store continues after reboot", `Quick, test_store_continues_after_reboot);
    ("deferred/audits survive", `Quick, test_deferred_and_audits_survive);
    ("dedup refcounts rebuilt", `Quick, test_dedup_refcounts_rebuilt);
    ("corrupt blob rejected", `Quick, test_corrupt_blob_rejected);
    ("stale blob is the rollback attack", `Quick, test_stale_blob_is_rollback);
    ("corrupt audit checkpoint restarts the scrub", `Quick, test_corrupt_audit_checkpoint_restarts);
    QCheck_alcotest.to_alcotest prop_blob_roundtrip_stable;
  ]

let () = Alcotest.run "worm_persistence" [ ("persistence", suite) ]
