(* Per-tenant key hierarchy and O(1) crypto-erasure: sealed tenant
   records, SCPU-signed erasure certificates, the provable [Erased]
   read outcome, wire/protocol behaviour, scrubber compliance, restart
   survival, and erasure x cluster failover. *)

open Worm_core
open Worm_testkit.Testkit
module Clock = Worm_simclock.Clock
module Device = Worm_scpu.Device
module Disk = Worm_simdisk.Disk
module Scrubber = Worm_audit.Scrubber
module Report = Worm_audit.Report
module Router = Worm_cluster.Shard_router
module Cluster_proof = Worm_cluster.Cluster_proof
module Message = Worm_proto.Message
module Server = Worm_proto.Server
module Cluster_server = Worm_proto.Cluster_server

let policy () = short_policy ~retention_s:10_000. ()

let write_tenant env ~tenant blocks =
  Worm.write env.store ~tenant ~policy:(policy ()) ~blocks

let cert_exn = function
  | Some cert -> cert
  | None -> Alcotest.fail "expected an erasure certificate"

(* ---------- sealing ---------- *)

let test_tenant_roundtrip () =
  let env = fresh_env () in
  let secret = "alice's diagnosis: entirely treatable" in
  let sn = write_tenant env ~tenant:"alice" [ secret ] in
  let plain = Worm.write env.store ~policy:(policy ()) ~blocks:[ "public notice" ] in
  (* normal reads serve and verify plaintext *)
  (match Worm.read env.store sn with
  | Proof.Found { blocks; vrd } ->
      Alcotest.(check (list string)) "plaintext served" [ secret ] blocks;
      Alcotest.(check string) "attr carries the tenant" "alice" vrd.Vrd.attr.Attr.tenant
  | r -> Alcotest.fail (Proof.describe r));
  check_verdict "client accepts" "valid-data" env sn;
  (* but the platter holds only ciphertext under the per-record key *)
  let rd =
    match Vrdt.find (Worm.vrdt env.store) sn with
    | Some (Vrdt.Active vrd) -> List.hd vrd.Vrd.rdl
    | _ -> Alcotest.fail "vrd missing"
  in
  (match Disk.Raw.residue env.disk rd with
  | Some on_platter ->
      Alcotest.(check bool) "no plaintext on media" false (String.equal on_platter secret);
      Alcotest.(check int) "same length (CTR)" (String.length secret) (String.length on_platter)
  | None -> Alcotest.fail "block unreadable");
  (* untenanted records are stored as before *)
  check_verdict "untenanted still valid" "valid-data" env plain;
  (* the host-side tenant index knows who owns what *)
  Alcotest.(check (list int)) "tenant serials" [ Serial.to_int sn ]
    (List.map Serial.to_int (Worm.tenant_serials env.store "alice"));
  Alcotest.(check int) "tenant record count" 1 (Worm.tenant_record_count env.store "alice");
  Alcotest.(check (list string)) "live tenants" [ "alice" ] (Worm.live_tenants env.store)

let test_per_record_keys_separate () =
  (* Same plaintext, same tenant, different serials: different bytes on
     the platter — per-record keys, not one tenant-wide stream. *)
  let env = fresh_env () in
  let sn1 = write_tenant env ~tenant:"t" [ "identical plaintext" ] in
  let sn2 = write_tenant env ~tenant:"t" [ "identical plaintext" ] in
  let platter sn =
    match Vrdt.find (Worm.vrdt env.store) sn with
    | Some (Vrdt.Active vrd) -> (
        match Disk.Raw.residue env.disk (List.hd vrd.Vrd.rdl) with
        | Some bytes -> bytes
        | None -> Alcotest.fail "block unreadable")
    | _ -> Alcotest.fail "vrd missing"
  in
  Alcotest.(check bool) "serials separate ciphertext" false (String.equal (platter sn1) (platter sn2))

(* ---------- erasure ---------- *)

let test_erasure_certified_and_provable () =
  let env = fresh_env () in
  let a1 = write_tenant env ~tenant:"alice" [ "a1" ] in
  let b1 = write_tenant env ~tenant:"bob" [ "b1" ] in
  let a2 = write_tenant env ~tenant:"alice" [ "a2" ] in
  let plain = Worm.write env.store ~policy:(policy ()) ~blocks:[ "keeper" ] in
  let cert = Worm.erase_tenant env.store ~tenant:"alice" in
  (* the receipt verifies under the CA-rooted deletion certificate *)
  (match Client.verify_erasure_cert env.client cert with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check string) "cert names the tenant" "alice" cert.Firmware.tenant;
  Alcotest.(check bool) "cert covers both records" true Serial.(a2 <= cert.Firmware.upto);
  (* erased reads are the provable Erased outcome, served without disk IO *)
  List.iter
    (fun sn ->
      (match Worm.read env.store sn with
      | Proof.Erased { vrd; cert = served } ->
          Alcotest.(check bool) "serial preserved" true (Serial.equal vrd.Vrd.sn sn);
          Alcotest.(check string) "served cert tenant" "alice" served.Firmware.tenant
      | r -> Alcotest.fail (Proof.describe r));
      check_verdict "verdict is properly-erased" "properly-erased" env sn)
    [ a1; a2 ];
  (* everyone else is untouched *)
  check_verdict "bob unaffected" "valid-data" env b1;
  check_verdict "untenanted unaffected" "valid-data" env plain;
  (* bookkeeping *)
  Alcotest.(check bool) "tenant_is_erased" true (Worm.tenant_is_erased env.store "alice");
  Alcotest.(check bool) "bob not erased" false (Worm.tenant_is_erased env.store "bob");
  ignore (cert_exn (Worm.erasure_cert_of env.store "alice"));
  Alcotest.(check int) "one erased tenant" 1 (List.length (Worm.erased_tenants env.store));
  Alcotest.(check (list string)) "alice no longer live" [ "bob" ] (Worm.live_tenants env.store);
  (* idempotent: re-erasing returns the original certificate *)
  let cert' = Worm.erase_tenant env.store ~tenant:"alice" in
  Alcotest.(check string) "same signature" cert.Firmware.signature cert'.Firmware.signature;
  Alcotest.(check int64) "same timestamp" cert.Firmware.erased_at cert'.Firmware.erased_at

let test_forged_cert_rejected () =
  let env = fresh_env () in
  ignore (write_tenant env ~tenant:"alice" [ "a" ]);
  let cert = Worm.erase_tenant env.store ~tenant:"alice" in
  (* a cert transplanted onto a different tenant must not verify *)
  (match Client.verify_erasure_cert env.client { cert with Firmware.tenant = "bob" } with
  | Ok () -> Alcotest.fail "transplanted cert verified"
  | Error _ -> ());
  (* nor one whose coverage bound was widened *)
  match
    Client.verify_erasure_cert env.client { cert with Firmware.upto = Serial.next cert.Firmware.upto }
  with
  | Ok () -> Alcotest.fail "widened cert verified"
  | Error _ -> ()

let test_erased_writes_refused () =
  let env = fresh_env () in
  ignore (write_tenant env ~tenant:"gone" [ "x" ]);
  ignore (Worm.erase_tenant env.store ~tenant:"gone");
  (* the store itself refuses before allocating a serial *)
  let before = Firmware.sn_current (Worm.firmware env.store) in
  (try
     ignore (write_tenant env ~tenant:"gone" [ "y" ]);
     Alcotest.fail "write for an erased tenant was admitted"
   with Invalid_argument _ -> ());
  Alcotest.(check bool) "no serial burned" true
    (Serial.equal before (Firmware.sn_current (Worm.firmware env.store)))

(* ---------- wire path ---------- *)

let test_erasure_over_the_wire () =
  let env = fresh_env () in
  let server = Server.create env.store in
  let ask request = Message.decode_response (Server.handle_bytes server (Message.encode_request request)) in
  let sn = write_tenant env ~tenant:"alice" [ "wire secret" ] in
  (* erase through the protocol; the reply carries the certificate *)
  let cert =
    match ask (Message.Erase_tenant "alice") with
    | Ok (Message.Erasure_cert_reply (Some cert)) -> cert
    | Ok r -> Alcotest.fail (Message.describe_response r)
    | Error e -> Alcotest.fail e
  in
  (match Client.verify_erasure_cert env.client cert with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* the Erased read response survives the codec roundtrip and verifies *)
  (match ask (Message.Read sn) with
  | Ok (Message.Read_reply { sn = sn'; response }) ->
      Alcotest.(check bool) "sn echoed" true (Serial.equal sn sn');
      (match response with
      | Proof.Erased _ -> ()
      | r -> Alcotest.fail (Proof.describe r));
      Alcotest.(check string) "decoded response verifies" "properly-erased"
        (Client.verdict_name (Client.verify_read env.client ~sn response))
  | Ok r -> Alcotest.fail (Message.describe_response r)
  | Error e -> Alcotest.fail e);
  (* cert fetch, and None for a never-erased tenant *)
  (match ask (Message.Erasure_cert_get "alice") with
  | Ok (Message.Erasure_cert_reply (Some _)) -> ()
  | Ok r -> Alcotest.fail (Message.describe_response r)
  | Error e -> Alcotest.fail e);
  (match ask (Message.Erasure_cert_get "bob") with
  | Ok (Message.Erasure_cert_reply None) -> ()
  | Ok r -> Alcotest.fail (Message.describe_response r)
  | Error e -> Alcotest.fail e);
  (* writes for the erased tenant are refused at the protocol layer,
     totally — a protocol error, not a dead dispatcher *)
  (match ask (Message.Write { policy = policy (); tenant = "alice"; blocks = [ "z" ] }) with
  | Ok (Message.Protocol_error _) -> ()
  | Ok r -> Alcotest.fail (Message.describe_response r)
  | Error e -> Alcotest.fail e);
  (* and empty tenant ids are named, not crashed on *)
  match ask (Message.Erase_tenant "") with
  | Ok (Message.Protocol_error _) -> ()
  | Ok r -> Alcotest.fail (Message.describe_response r)
  | Error e -> Alcotest.fail e

(* ---------- maintenance and audits ---------- *)

let test_scrubber_erased_compliant () =
  let env = fresh_env () in
  ignore (write_tenant env ~tenant:"alice" [ "a1" ]);
  ignore (write_tenant env ~tenant:"alice" [ "a2" ]);
  ignore (write_tenant env ~tenant:"bob" [ "b1" ]);
  ignore (Worm.erase_tenant env.store ~tenant:"alice");
  let s = Scrubber.create ~store:env.store ~client:env.client () in
  let report = Scrubber.run_pass s in
  Alcotest.(check bool) "erased tenant scrubs clean" true (Report.clean report)

let test_deferred_audit_discharged () =
  (* Host-hash records of an erased tenant cannot be re-audited (their
     plaintext is gone by design); the pending audit is discharged as
     compliant, not reported as a finding. *)
  let config = { Worm.default_config with Worm.datasig_mode = Worm.Host_hash } in
  let env = fresh_env ~config () in
  ignore (Worm.write env.store ~tenant:"alice" ~policy:(policy ()) ~blocks:[ "h1" ]);
  ignore (Worm.write env.store ~tenant:"alice" ~policy:(policy ()) ~blocks:[ "h2" ]);
  Alcotest.(check bool) "audits queued" true (Worm.audit_backlog env.store <> []);
  ignore (Worm.erase_tenant env.store ~tenant:"alice");
  let outcome = Worm.run_audits env.store () in
  Alcotest.(check (list string)) "no mismatches" []
    (List.map (fun (_, e) -> Firmware.error_to_string e) outcome.Worm.mismatches);
  Alcotest.(check (list string)) "no findings" []
    (List.map (fun (_, e) -> Firmware.error_to_string e) (Worm.drain_audit_findings env.store));
  Alcotest.(check bool) "backlog drained" true (Worm.audit_backlog env.store = [])

let test_erasure_survives_restart () =
  let env = fresh_env () in
  let a = write_tenant env ~tenant:"alice" [ "gone" ] in
  let b = write_tenant env ~tenant:"bob" [ "kept" ] in
  ignore (Worm.erase_tenant env.store ~tenant:"alice");
  let blob = Worm.save_host_state env.store in
  match Worm.restore ~firmware:(Worm.firmware env.store) ~disk:env.disk ~host_state:blob () with
  | Error e -> Alcotest.fail e
  | Ok store' ->
      (match Worm.read store' a with
      | Proof.Erased _ -> ()
      | r -> Alcotest.fail (Proof.describe r));
      Alcotest.(check bool) "tombstone survives" true (Worm.tenant_is_erased store' "alice");
      (* the tenant index is derivable state: rebuilt from the VRDT *)
      Alcotest.(check (list int)) "bob's index rebuilt" [ Serial.to_int b ]
        (List.map Serial.to_int (Worm.tenant_serials store' "bob"));
      Alcotest.(check string) "bob still readable" "valid-data"
        (Client.verdict_name (Client.verify_read env.client ~sn:b (Worm.read store' b)))

(* ---------- cluster: fenced-shard totality (bugfix regression) ---------- *)

let fresh_router ?(shards = 2) ?(mirrored = true) () =
  let clock = Clock.create () in
  let config =
    {
      Router.default_config with
      Router.shards;
      mirrored;
      device_config = Device.test_config;
      disk_latency = Disk.zero_latency;
    }
  in
  let seed =
    Printf.sprintf "erasure-cluster-%d"
      (incr counter;
       !counter)
  in
  (Router.create ~config ~seed ~ca:(Lazy.force ca) ~clock (), clock)

let test_fenced_shard_wire_total () =
  (* Regression: a request routed at a shard with no serving store used
     to [failwith] out of the dispatcher. It must answer — a protocol
     refusal through the wire path — because a request arriving
     mid-failover is routine, not a crash. *)
  let router, _clock = fresh_router ~shards:2 ~mirrored:false () in
  let front = Cluster_server.create router in
  let write_exn blocks =
    match Router.write router ~policy:(policy ()) ~blocks with
    | Ok sn -> sn
    | Error e -> Alcotest.fail e
  in
  let g1 = write_exn [ "r1" ] in
  (* land a second record on shard 1 so the interleave's NEXT stripe is
     the shard we are about to fence *)
  ignore (write_exn [ "r2" ]);
  Router.kill router 0;
  (match Router.fence router 0 with Ok () -> () | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "shard 0 has no serving store" true (Router.serving_store router 0 = None);
  (match Cluster_server.shard_server front 0 with
  | None -> ()
  | Some _ -> Alcotest.fail "fenced shard yielded a dispatcher");
  (* every cluster request still answers in decodable bytes *)
  List.iter
    (fun request ->
      match Message.decode_response (Cluster_server.handle_bytes front (Message.encode_request request)) with
      | Ok (Message.Protocol_error _) -> ()
      | Ok (Message.Cluster_read_reply { response = Proof.Refused _; _ }) -> ()
      | Ok r -> Alcotest.failf "%s: unexpected %s" (Message.describe_request request) (Message.describe_response r)
      | Error e -> Alcotest.fail e)
    [
      Message.Cluster_hello;
      Message.Cluster_read g1;
      Message.Cluster_proof_get;
      Message.Write { policy = policy (); tenant = ""; blocks = [ "w" ] };
      Message.Erase_tenant "alice";
    ];
  (* verifiers stay total too: the fenced slot is None, and responses
     claiming to come from it are unverifiable, not exceptions *)
  let verifiers = Router.verifiers router in
  Alcotest.(check bool) "fenced slot is None" true (verifiers.(0) = None);
  match Router.verify_read router verifiers g1 (Router.read router g1) with
  | Client.Violation [ Client.Absence_unproven ] -> ()
  | v -> Alcotest.fail (Client.verdict_name v)

(* ---------- cluster: erasure x failover ---------- *)

let test_erasure_survives_failover () =
  let router, _clock = fresh_router ~shards:2 ~mirrored:true () in
  (* spread two tenants' records across both stripes *)
  let write ~tenant tag =
    match Router.write router ~tenant ~policy:(policy ()) ~blocks:[ tag ] with
    | Ok sn -> sn
    | Error e -> Alcotest.fail e
  in
  let alice = List.init 4 (fun i -> write ~tenant:"alice" (Printf.sprintf "a%d" i)) in
  let bob = List.init 4 (fun i -> write ~tenant:"bob" (Printf.sprintf "b%d" i)) in
  let certs =
    match Router.erase_tenant router ~tenant:"alice" with
    | Ok certs -> certs
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check int) "every shard attests" 2 (List.length certs);
  (* the cluster-level claim: one cert per shard, each under its own
     shard's deletion key, checked against the aggregated proof *)
  let proof = match Router.freshness_proof router with Ok p -> p | Error e -> Alcotest.fail e in
  let now = Clock.now _clock in
  (match Cluster_proof.verify_erasure ~ca:(ca_pub ()) ~now proof ~tenant:"alice" certs with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* a shard that has not attested fails the whole claim *)
  (match Cluster_proof.verify_erasure ~ca:(ca_pub ()) ~now proof ~tenant:"alice" [ List.hd certs ] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "partial erasure claim accepted");
  (* and a transplanted tenant name fails every shard *)
  (match Cluster_proof.verify_erasure ~ca:(ca_pub ()) ~now proof ~tenant:"bob" certs with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "erasure claim accepted for the wrong tenant");
  let check_certs () =
    let verifiers = Router.verifiers router in
    List.iter
      (fun (shard, _store_id, cert) ->
        match verifiers.(shard) with
        | None -> Alcotest.failf "shard %d has no verifier" shard
        | Some client -> (
            match Client.verify_erasure_cert client cert with
            | Ok () -> ()
            | Error e -> Alcotest.failf "shard %d cert: %s" shard e))
      (Router.erasure_certs router ~tenant:"alice")
  in
  let check_reads () =
    let verifiers = Router.verifiers router in
    List.iter
      (fun g ->
        Alcotest.(check string)
          (Printf.sprintf "global %d erased" (Serial.to_int g))
          "properly-erased"
          (Client.verdict_name (Router.verify_read router verifiers g (Router.read router g))))
      alice;
    List.iter
      (fun g ->
        Alcotest.(check string)
          (Printf.sprintf "global %d intact" (Serial.to_int g))
          "valid-data"
          (Client.verdict_name (Router.verify_read router verifiers g (Router.read router g))))
      bob
  in
  check_certs ();
  check_reads ();
  (* kill the primary of shard 0: the lockstep mirror serves, and it was
     erased too, so alice stays forgotten while fenced... *)
  Router.kill router 0;
  (match Router.fence router 0 with Ok () -> () | Error e -> Alcotest.fail e);
  check_certs ();
  check_reads ();
  (* ...and after full failover (promotion + fresh mirror resync), the
     promoted store's certificate still verifies and the fresh mirror
     inherited the tombstone rather than the plaintext *)
  (match Router.recover router 0 with Ok _ -> () | Error e -> Alcotest.fail e);
  check_certs ();
  check_reads ();
  Alcotest.(check bool) "cluster still refuses alice" true (Router.tenant_is_erased router "alice");
  match Router.write router ~tenant:"alice" ~policy:(policy ()) ~blocks:[ "back?" ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "erased tenant re-admitted after failover"

let suite =
  [
    ("tenant roundtrip", `Quick, test_tenant_roundtrip);
    ("per-record keys separate", `Quick, test_per_record_keys_separate);
    ("erasure certified and provable", `Quick, test_erasure_certified_and_provable);
    ("forged cert rejected", `Quick, test_forged_cert_rejected);
    ("erased writes refused", `Quick, test_erased_writes_refused);
    ("erasure over the wire", `Quick, test_erasure_over_the_wire);
    ("scrubber: erased is compliant", `Quick, test_scrubber_erased_compliant);
    ("deferred audit discharged", `Quick, test_deferred_audit_discharged);
    ("erasure survives restart", `Quick, test_erasure_survives_restart);
    ("fenced shard: wire path total", `Quick, test_fenced_shard_wire_total);
    ("erasure survives failover", `Quick, test_erasure_survives_failover);
  ]

let () = Alcotest.run "worm_erasure" [ ("erasure", suite) ]
