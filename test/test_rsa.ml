(* RSA signatures, primality, and certificates. Key generation is the
   slow part, so a few shared keys are generated once and reused. *)

open Worm_crypto
module Clock = Worm_simclock.Clock

let rng = Drbg.create ~seed:"test-rsa"
let key512 = lazy (Rsa.generate rng ~bits:512)
let key1024 = lazy (Rsa.generate rng ~bits:1024)

(* ---------- primality ---------- *)

let test_small_primes () =
  let prime_list = [ 2; 3; 5; 7; 11; 101; 257; 65537; 1_000_000_007 ] in
  List.iter
    (fun p -> Alcotest.(check bool) (string_of_int p) true (Prime.is_probably_prime rng (Nat.of_int p)))
    prime_list;
  let composite_list = [ 0; 1; 4; 9; 255; 65535; 1_000_000_006; 561 (* Carmichael *); 41041 ] in
  List.iter
    (fun c -> Alcotest.(check bool) (string_of_int c) false (Prime.is_probably_prime rng (Nat.of_int c)))
    composite_list

let test_known_large_prime () =
  (* 2^127 - 1 is a Mersenne prime; 2^127 + 1 is divisible by 3. *)
  let m127 = Nat.pred (Nat.shift_left Nat.one 127) in
  Alcotest.(check bool) "M127 prime" true (Prime.is_probably_prime rng m127);
  Alcotest.(check bool) "2^127+1 composite" false
    (Prime.is_probably_prime rng (Nat.succ (Nat.shift_left Nat.one 127)))

let test_generated_prime_shape () =
  let p = Prime.generate rng ~bits:96 in
  Alcotest.(check int) "exact bit width" 96 (Nat.bit_length p);
  Alcotest.(check bool) "odd" false (Nat.is_even p);
  Alcotest.(check bool) "probably prime" true (Prime.is_probably_prime rng p);
  Alcotest.(check bool) "second-highest bit set" true (Nat.test_bit p 94)

(* ---------- RSA sign/verify ---------- *)

let test_sign_verify_roundtrip () =
  let key = Lazy.force key512 in
  let pub = Rsa.public_of key in
  let s = Rsa.sign key "message" in
  Alcotest.(check int) "signature width" 64 (String.length s);
  Alcotest.(check bool) "verifies" true (Rsa.verify pub ~msg:"message" ~signature:s);
  Alcotest.(check bool) "wrong message" false (Rsa.verify pub ~msg:"messag3" ~signature:s);
  Alcotest.(check bool) "empty message" true
    (Rsa.verify pub ~msg:"" ~signature:(Rsa.sign key ""))

let test_signature_tamper_detected () =
  let key = Lazy.force key512 in
  let pub = Rsa.public_of key in
  let s = Bytes.of_string (Rsa.sign key "message") in
  Bytes.set s 10 (Char.chr (Char.code (Bytes.get s 10) lxor 1));
  Alcotest.(check bool) "bitflip rejected" false (Rsa.verify pub ~msg:"message" ~signature:(Bytes.to_string s));
  Alcotest.(check bool) "truncation rejected" false
    (Rsa.verify pub ~msg:"message" ~signature:(String.sub (Bytes.to_string s) 0 63));
  Alcotest.(check bool) "empty signature rejected" false (Rsa.verify pub ~msg:"message" ~signature:"")

let test_cross_key_rejected () =
  let k1 = Lazy.force key512 and k2 = Lazy.force key1024 in
  let s = Rsa.sign k1 "msg" in
  Alcotest.(check bool) "other key rejects" false (Rsa.verify (Rsa.public_of k2) ~msg:"msg" ~signature:s)

let test_raw_roundtrip () =
  let key = Lazy.force key512 in
  let pub = Rsa.public_of key in
  let m = Drbg.nat_below rng pub.Rsa.n in
  let c = Rsa.raw_apply_secret key m in
  Alcotest.(check bool) "CRT private op inverts public op" true
    (Nat.equal (Nat.modulo m pub.Rsa.n) (Rsa.raw_apply_public pub c))

let test_sign_batch () =
  let key = Lazy.force key512 in
  let pub = Rsa.public_of key in
  let msgs = [ ""; "a"; "batch message"; String.make 300 'x' ] in
  let sigs = Rsa.sign_batch key msgs in
  Alcotest.(check int) "one signature per message" (List.length msgs) (List.length sigs);
  Alcotest.(check (list string)) "batch equals sequential" (List.map (Rsa.sign key) msgs) sigs;
  List.iter2
    (fun msg signature -> Alcotest.(check bool) "batch signature verifies" true (Rsa.verify pub ~msg ~signature))
    msgs sigs;
  Alcotest.(check (list string)) "empty batch" [] (Rsa.sign_batch key [])

let prop_sign_verify =
  QCheck.Test.make ~name:"sign/verify on random messages" ~count:30 QCheck.string (fun msg ->
      let key = Lazy.force key512 in
      Rsa.verify (Rsa.public_of key) ~msg ~signature:(Rsa.sign key msg))

let prop_signature_not_transferable =
  QCheck.Test.make ~name:"signature bound to its message" ~count:30
    QCheck.(pair string string)
    (fun (m1, m2) ->
      QCheck.assume (not (String.equal m1 m2));
      let key = Lazy.force key512 in
      not (Rsa.verify (Rsa.public_of key) ~msg:m2 ~signature:(Rsa.sign key m1)))

let test_generate_rejects_small () =
  Alcotest.check_raises "under 512" (Invalid_argument "Rsa.generate: modulus below 512 bits") (fun () ->
      ignore (Rsa.generate rng ~bits:256))

let test_public_codec () =
  let pub = Rsa.public_of (Lazy.force key512) in
  let encoded = Worm_util.Codec.encode Rsa.encode_public pub in
  match Worm_util.Codec.decode Rsa.decode_public encoded with
  | Ok pub' -> Alcotest.(check bool) "roundtrip" true (Rsa.equal_public pub pub')
  | Error e -> Alcotest.fail e

let test_fingerprint_stable () =
  let pub = Rsa.public_of (Lazy.force key512) in
  Alcotest.(check string) "deterministic" (Rsa.fingerprint pub) (Rsa.fingerprint pub);
  Alcotest.(check int) "16 hex chars" 16 (String.length (Rsa.fingerprint pub));
  let other = Rsa.public_of (Lazy.force key1024) in
  Alcotest.(check bool) "distinct keys, distinct prints" false
    (String.equal (Rsa.fingerprint pub) (Rsa.fingerprint other))

(* ---------- certificates ---------- *)

let test_cert_lifecycle () =
  let ca = Lazy.force key1024 in
  let subject_key = Rsa.public_of (Lazy.force key512) in
  let cert =
    Cert.issue ~ca ~subject:"device-1/signing" ~role:Cert.Scpu_signing ~key:subject_key ~not_before:100L
      ~not_after:1000L
  in
  let ca_pub = Rsa.public_of ca in
  Alcotest.(check bool) "valid inside window" true (Cert.verify ~ca:ca_pub ~now:500L cert);
  Alcotest.(check bool) "not yet valid" false (Cert.verify ~ca:ca_pub ~now:50L cert);
  Alcotest.(check bool) "expired" false (Cert.verify ~ca:ca_pub ~now:1001L cert);
  Alcotest.(check bool) "wrong CA" false (Cert.verify ~ca:subject_key ~now:500L cert)

let test_cert_tamper_detected () =
  let ca = Lazy.force key1024 in
  let subject_key = Rsa.public_of (Lazy.force key512) in
  let cert =
    Cert.issue ~ca ~subject:"device-1/signing" ~role:Cert.Scpu_signing ~key:subject_key ~not_before:0L
      ~not_after:1000L
  in
  let ca_pub = Rsa.public_of ca in
  Alcotest.(check bool) "subject swap rejected" false
    (Cert.verify ~ca:ca_pub ~now:5L { cert with Cert.subject = "device-2/signing" });
  Alcotest.(check bool) "role swap rejected" false
    (Cert.verify ~ca:ca_pub ~now:5L { cert with Cert.role = Cert.Regulation_authority });
  Alcotest.(check bool) "validity extension rejected" false
    (Cert.verify ~ca:ca_pub ~now:5L { cert with Cert.not_after = Int64.max_int })

let test_cert_codec () =
  let ca = Lazy.force key1024 in
  let cert =
    Cert.issue ~ca ~subject:"dev/deletion" ~role:Cert.Scpu_deletion
      ~key:(Rsa.public_of (Lazy.force key512))
      ~not_before:0L ~not_after:(Clock.ns_of_years 10.)
  in
  let encoded = Worm_util.Codec.encode Cert.encode cert in
  match Worm_util.Codec.decode Cert.decode encoded with
  | Ok cert' ->
      Alcotest.(check bool) "roundtrip verifies" true
        (Cert.verify ~ca:(Rsa.public_of ca) ~now:5L cert');
      Alcotest.(check string) "subject preserved" cert.Cert.subject cert'.Cert.subject
  | Error e -> Alcotest.fail e

let suite =
  [
    ("small primes classified", `Quick, test_small_primes);
    ("large prime classified", `Quick, test_known_large_prime);
    ("generated prime shape", `Quick, test_generated_prime_shape);
    ("sign/verify roundtrip", `Quick, test_sign_verify_roundtrip);
    ("tampered signature rejected", `Quick, test_signature_tamper_detected);
    ("cross-key rejected", `Quick, test_cross_key_rejected);
    ("raw CRT roundtrip", `Quick, test_raw_roundtrip);
    ("batch signing", `Quick, test_sign_batch);
    ("small modulus rejected", `Quick, test_generate_rejects_small);
    ("public key codec", `Quick, test_public_codec);
    ("fingerprint stable", `Quick, test_fingerprint_stable);
    ("cert lifecycle", `Quick, test_cert_lifecycle);
    ("cert tamper detected", `Quick, test_cert_tamper_detected);
    ("cert codec", `Quick, test_cert_codec);
    QCheck_alcotest.to_alcotest prop_sign_verify;
    QCheck_alcotest.to_alcotest prop_signature_not_transferable;
  ]

let () = Alcotest.run "worm_rsa" [ ("rsa", suite) ]
