(* Unit and property tests for Worm_util: hex, binary codec, and
   constant-time comparison. *)

open Worm_util

let check = Alcotest.check
let string_t = Alcotest.string

(* ---------- Hex ---------- *)

let test_hex_known () =
  check string_t "empty" "" (Hex.encode "");
  check string_t "abc" "616263" (Hex.encode "abc");
  check string_t "bytes" "00ff10" (Hex.encode "\x00\xff\x10");
  check string_t "roundtrip" "\x00\xff\x10" (Hex.decode "00ff10");
  check string_t "uppercase accepted" "\xab\xcd" (Hex.decode "ABCD")

let test_hex_errors () =
  Alcotest.check_raises "odd length" (Invalid_argument "Hex.decode: odd length") (fun () ->
      ignore (Hex.decode "abc"));
  Alcotest.check_raises "bad digit" (Invalid_argument "Hex.decode: non-hex character") (fun () ->
      ignore (Hex.decode "zz"))

let prop_hex_roundtrip =
  QCheck.Test.make ~name:"hex roundtrip" ~count:500 QCheck.string (fun s ->
      String.equal (Hex.decode (Hex.encode s)) s)

(* ---------- Ct ---------- *)

let test_ct_equal () =
  Alcotest.(check bool) "equal" true (Ct.equal "abc" "abc");
  Alcotest.(check bool) "unequal" false (Ct.equal "abc" "abd");
  Alcotest.(check bool) "length differs" false (Ct.equal "abc" "abcd");
  Alcotest.(check bool) "empty" true (Ct.equal "" "")

let prop_ct_matches_structural =
  QCheck.Test.make ~name:"Ct.equal agrees with =" ~count:500
    QCheck.(pair string string)
    (fun (a, b) -> Ct.equal a b = String.equal a b)

(* ---------- Codec ---------- *)

let test_codec_ints () =
  let e = Codec.encoder () in
  Codec.u8 e 0x12;
  Codec.u16 e 0x3456;
  Codec.u32 e 0x789abcde;
  Codec.u64 e 0x0123456789abcdefL;
  let s = Codec.to_string e in
  check string_t "layout" "\x12\x34\x56\x78\x9a\xbc\xde\x01\x23\x45\x67\x89\xab\xcd\xef" s;
  let d = Codec.decoder s in
  Alcotest.(check int) "u8" 0x12 (Codec.read_u8 d);
  Alcotest.(check int) "u16" 0x3456 (Codec.read_u16 d);
  Alcotest.(check int) "u32" 0x789abcde (Codec.read_u32 d);
  Alcotest.(check int64) "u64" 0x0123456789abcdefL (Codec.read_u64 d);
  Codec.expect_end d

let test_codec_ranges () =
  let e = Codec.encoder () in
  Alcotest.check_raises "u8 over" (Invalid_argument "Codec.u8") (fun () -> Codec.u8 e 256);
  Alcotest.check_raises "u8 under" (Invalid_argument "Codec.u8") (fun () -> Codec.u8 e (-1));
  Alcotest.check_raises "u16 over" (Invalid_argument "Codec.u16") (fun () -> Codec.u16 e 65536);
  Alcotest.check_raises "u32 over" (Invalid_argument "Codec.u32") (fun () -> Codec.u32 e 0x100000000);
  Alcotest.check_raises "int_as_u64 negative" (Invalid_argument "Codec.int_as_u64") (fun () ->
      Codec.int_as_u64 e (-5))

let test_codec_truncation () =
  let d = Codec.decoder "\x01" in
  Alcotest.check_raises "u32 short" Codec.Truncated (fun () -> ignore (Codec.read_u32 d))

let test_codec_trailing () =
  match Codec.decode Codec.read_u8 "\x01\x02" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing bytes accepted"

let test_codec_bool_strict () =
  let d = Codec.decoder "\x02" in
  (match Codec.read_bool d with
  | exception Codec.Malformed _ -> ()
  | _ -> Alcotest.fail "bool tag 2 accepted");
  let d = Codec.decoder "\x07" in
  match Codec.read_option Codec.read_u8 d with
  | exception Codec.Malformed _ -> ()
  | _ -> Alcotest.fail "option tag 7 accepted"

let value_codec =
  let enc e (n, s, flag, opt, l) =
    Codec.int_as_u64 e n;
    Codec.bytes e s;
    Codec.bool e flag;
    Codec.option Codec.u32 e opt;
    Codec.list (fun e x -> Codec.u16 e x) e l
  in
  let dec d =
    let n = Codec.read_int_as_u64 d in
    let s = Codec.read_bytes d in
    let flag = Codec.read_bool d in
    let opt = Codec.read_option Codec.read_u32 d in
    let l = Codec.read_list Codec.read_u16 d in
    (n, s, flag, opt, l)
  in
  (enc, dec)

let prop_codec_roundtrip =
  let enc, dec = value_codec in
  let gen =
    QCheck.(
      tup5 (map abs int) string bool (option (int_bound 0xffffffff)) (small_list (int_bound 0xffff)))
  in
  QCheck.Test.make ~name:"composite codec roundtrip" ~count:300 gen (fun v ->
      match Codec.decode dec (Codec.encode enc v) with
      | Ok v' -> v = v'
      | Error _ -> false)

let prop_codec_random_bytes_never_crash =
  let enc, dec = value_codec in
  ignore enc;
  QCheck.Test.make ~name:"decoder total on random bytes" ~count:300 QCheck.string (fun s ->
      match Codec.decode dec s with
      | Ok _ | Error _ -> true)

(* ---------- Codec vs the retained seed implementation ---------- *)

(* The byte format is signed and hashed, so the rewritten codec must be
   bit-identical to test/support/ref_codec.ml in both directions. *)

module Ref = Worm_testkit.Ref_codec

let ref_value_codec =
  let enc e (n, s, flag, opt, l) =
    Ref.int_as_u64 e n;
    Ref.bytes e s;
    Ref.bool e flag;
    Ref.option Ref.u32 e opt;
    Ref.list (fun e x -> Ref.u16 e x) e l
  in
  let dec d =
    let n = Ref.read_int_as_u64 d in
    let s = Ref.read_bytes d in
    let flag = Ref.read_bool d in
    let opt = Ref.read_option Ref.read_u32 d in
    let l = Ref.read_list Ref.read_u16 d in
    (n, s, flag, opt, l)
  in
  (enc, dec)

let composite_gen =
  QCheck.(
    tup5 (map abs int) string bool (option (int_bound 0xffffffff)) (small_list (int_bound 0xffff)))

let prop_codec_matches_ref_encode =
  let enc, _ = value_codec in
  let ref_enc, _ = ref_value_codec in
  QCheck.Test.make ~name:"new codec encodes ref codec's bytes" ~count:300 composite_gen (fun v ->
      String.equal (Codec.encode enc v) (Ref.encode ref_enc v))

let prop_codec_matches_ref_decode =
  let _, dec = value_codec in
  let ref_enc, ref_dec = ref_value_codec in
  QCheck.Test.make ~name:"new codec decodes ref codec's bytes (and back)" ~count:300 composite_gen
    (fun v ->
      let bytes = Ref.encode ref_enc v in
      match (Codec.decode dec bytes, Ref.decode ref_dec bytes) with
      | Ok a, Ok b -> a = v && b = v
      | _ -> false)

(* ---------- slice decoder bounds ---------- *)

let test_decoder_sub_bounds () =
  let s = "abcdefgh" in
  Alcotest.check_raises "negative pos" (Invalid_argument "Codec.decoder_sub") (fun () ->
      ignore (Codec.decoder_sub s ~pos:(-1) ~len:2));
  Alcotest.check_raises "negative len" (Invalid_argument "Codec.decoder_sub") (fun () ->
      ignore (Codec.decoder_sub s ~pos:0 ~len:(-1)));
  Alcotest.check_raises "past end" (Invalid_argument "Codec.decoder_sub") (fun () ->
      ignore (Codec.decoder_sub s ~pos:6 ~len:3));
  Alcotest.check_raises "overflowing pos" (Invalid_argument "Codec.decoder_sub") (fun () ->
      ignore (Codec.decoder_sub s ~pos:max_int ~len:1));
  (* a valid window reads only its own bytes and hits Truncated at the
     window edge, not the string's *)
  let d = Codec.decoder_sub s ~pos:2 ~len:2 in
  Alcotest.(check int) "window u16" 0x6364 (Codec.read_u16 d);
  Alcotest.check_raises "window exhausted" Codec.Truncated (fun () -> ignore (Codec.read_u8 d))

let test_raw_sub_bounds () =
  Codec.with_encoder (fun e ->
      Alcotest.check_raises "raw_sub past end" (Invalid_argument "Codec.raw_sub") (fun () ->
          Codec.raw_sub e "abc" ~pos:2 ~len:2);
      Alcotest.check_raises "raw_sub negative" (Invalid_argument "Codec.raw_sub") (fun () ->
          Codec.raw_sub e "abc" ~pos:(-1) ~len:1);
      Codec.raw_sub e "abcdef" ~pos:1 ~len:4;
      Alcotest.(check string) "raw_sub bytes" "bcde" (Codec.to_string e))

let test_slice_views () =
  let bytes =
    Codec.encode
      (fun e () ->
        Codec.bytes e "inner-payload";
        Codec.u16 e 0xbeef)
      ()
  in
  let d = Codec.decoder bytes in
  let s = Codec.read_bytes_slice d in
  Alcotest.(check string) "slice materializes" "inner-payload" (Codec.slice_string s);
  Alcotest.(check int) "outer decode continues" 0xbeef (Codec.read_u16 d);
  Codec.expect_end d;
  (* a slice over a framed sub-message decodes in place *)
  let framed =
    Codec.encode
      (fun e () ->
        Codec.bytes e (Codec.encode (fun e () -> Codec.u32 e 42) ());
        Codec.u8 e 7)
      ()
  in
  let d = Codec.decoder framed in
  let inner = Codec.read_bytes_slice d in
  let di = Codec.slice_decoder inner in
  Alcotest.(check int) "inner u32" 42 (Codec.read_u32 di);
  Codec.expect_end di;
  Alcotest.(check int) "outer tail" 7 (Codec.read_u8 d);
  (* a length prefix larger than the remaining input must truncate, not
     hand out a slice past the end *)
  let d = Codec.decoder "\x00\x00\x00\xff" in
  Alcotest.check_raises "oversized length prefix" Codec.Truncated (fun () ->
      ignore (Codec.read_bytes_slice d))

let test_pool_reuse () =
  let before = (Codec.pool_stats ()).Codec.pool_reused in
  ignore (Codec.encode (fun e () -> Codec.u8 e 1) ());
  ignore (Codec.encode (fun e () -> Codec.u8 e 2) ());
  let after = (Codec.pool_stats ()).Codec.pool_reused in
  Alcotest.(check bool) "second borrow reuses" true (after > before);
  (* nested borrows must hand out distinct encoders *)
  Codec.with_encoder (fun outer ->
      Codec.u8 outer 1;
      Codec.with_encoder (fun inner ->
          Codec.u8 inner 2;
          Alcotest.(check string) "inner isolated" "\x02" (Codec.to_string inner));
      Codec.u8 outer 3;
      Alcotest.(check string) "outer intact" "\x01\x03" (Codec.to_string outer))

let suite =
  [
    ("hex known values", `Quick, test_hex_known);
    ("hex error handling", `Quick, test_hex_errors);
    ("ct equal", `Quick, test_ct_equal);
    ("codec int layout", `Quick, test_codec_ints);
    ("codec range checks", `Quick, test_codec_ranges);
    ("codec truncation", `Quick, test_codec_truncation);
    ("codec trailing bytes", `Quick, test_codec_trailing);
    ("codec strict tags", `Quick, test_codec_bool_strict);
    ("slice decoder bounds", `Quick, test_decoder_sub_bounds);
    ("raw_sub bounds", `Quick, test_raw_sub_bounds);
    ("slice views", `Quick, test_slice_views);
    ("encoder pool reuse", `Quick, test_pool_reuse);
    QCheck_alcotest.to_alcotest prop_hex_roundtrip;
    QCheck_alcotest.to_alcotest prop_ct_matches_structural;
    QCheck_alcotest.to_alcotest prop_codec_roundtrip;
    QCheck_alcotest.to_alcotest prop_codec_random_bytes_never_crash;
    QCheck_alcotest.to_alcotest prop_codec_matches_ref_encode;
    QCheck_alcotest.to_alcotest prop_codec_matches_ref_decode;
  ]

let () = Alcotest.run "worm_util" [ ("util", suite) ]
