(* Reference codec: the original, obviously-correct [Worm_util.Codec]
   retained verbatim as a byte-identity oracle (the `ref_hash.ml`
   pattern). The production codec was rebuilt around a preallocated
   [Bytes] core with unsafe big-endian word writes and pooled encoders;
   encodings are canonical and signed, so tests and the wire smoke
   compare every encoding produced by the new codec against this one.
   Do not "improve" this module — its value is that it never changes. *)

type encoder = Buffer.t

let encoder () = Buffer.create 64
let to_string = Buffer.contents

let u8 e v =
  if v < 0 || v > 0xff then invalid_arg "Codec.u8";
  Buffer.add_char e (Char.chr v)

let u16 e v =
  if v < 0 || v > 0xffff then invalid_arg "Codec.u16";
  Buffer.add_char e (Char.chr (v lsr 8));
  Buffer.add_char e (Char.chr (v land 0xff))

let u32 e v =
  if v < 0 || v > 0xffffffff then invalid_arg "Codec.u32";
  u16 e (v lsr 16);
  u16 e (v land 0xffff)

let u64 e v =
  for i = 7 downto 0 do
    let byte = Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff in
    Buffer.add_char e (Char.chr byte)
  done

let int_as_u64 e v =
  if v < 0 then invalid_arg "Codec.int_as_u64";
  u64 e (Int64.of_int v)

let bool e b = u8 e (if b then 1 else 0)

let bytes e s =
  u32 e (String.length s);
  Buffer.add_string e s

let list item e xs =
  u32 e (List.length xs);
  List.iter (item e) xs

let option item e = function
  | None -> u8 e 0
  | Some v ->
      u8 e 1;
      item e v

type decoder = { input : string; mutable pos : int }

exception Truncated
exception Malformed of string

let decoder input = { input; pos = 0 }
let remaining d = String.length d.input - d.pos

let take d n =
  if remaining d < n then raise Truncated;
  let pos = d.pos in
  d.pos <- pos + n;
  pos

let read_u8 d =
  let pos = take d 1 in
  Char.code d.input.[pos]

let read_u16 d =
  let pos = take d 2 in
  (Char.code d.input.[pos] lsl 8) lor Char.code d.input.[pos + 1]

let read_u32 d =
  let hi = read_u16 d in
  let lo = read_u16 d in
  (hi lsl 16) lor lo

let read_u64 d =
  let pos = take d 8 in
  let v = ref 0L in
  for i = 0 to 7 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code d.input.[pos + i]))
  done;
  !v

let read_int_as_u64 d =
  let v = read_u64 d in
  if Int64.compare v 0L < 0 || Int64.compare v (Int64.of_int max_int) > 0 then
    raise (Malformed "int_as_u64 out of range");
  Int64.to_int v

let read_bool d =
  match read_u8 d with
  | 0 -> false
  | 1 -> true
  | n -> raise (Malformed (Printf.sprintf "bad bool tag %d" n))

let read_bytes d =
  let n = read_u32 d in
  let pos = take d n in
  String.sub d.input pos n

let read_list item d =
  let n = read_u32 d in
  List.init n (fun _ -> item d)

let read_option item d =
  match read_u8 d with
  | 0 -> None
  | 1 -> Some (item d)
  | n -> raise (Malformed (Printf.sprintf "bad option tag %d" n))

let expect_end d =
  if remaining d <> 0 then raise (Malformed "trailing bytes")

let encode enc v =
  let e = encoder () in
  enc e v;
  to_string e

let decode dec s =
  let d = decoder s in
  match
    let v = dec d in
    expect_end d;
    v
  with
  | v -> Ok v
  | exception Truncated -> Error "truncated input"
  | exception Malformed msg -> Error ("malformed input: " ^ msg)
