(* Retained reference implementations of SHA-256 and SHA-1: the seed's
   safe, loop-based cores, kept verbatim so tests can check the unsafe
   unrolled production cores in [lib/crypto] byte-for-byte against an
   independent implementation. Do not optimise this file. *)

module Sha256 = struct
  (* 32-bit words carried in native ints, masked after every operation. *)

  let mask = 0xFFFFFFFF
  let rotr x n = ((x lsr n) lor (x lsl (32 - n))) land mask
  let shr x n = x lsr n

  let k =
    [|
      0x428a2f98; 0x71374491; 0xb5c0fbcf; 0xe9b5dba5; 0x3956c25b; 0x59f111f1; 0x923f82a4; 0xab1c5ed5;
      0xd807aa98; 0x12835b01; 0x243185be; 0x550c7dc3; 0x72be5d74; 0x80deb1fe; 0x9bdc06a7; 0xc19bf174;
      0xe49b69c1; 0xefbe4786; 0x0fc19dc6; 0x240ca1cc; 0x2de92c6f; 0x4a7484aa; 0x5cb0a9dc; 0x76f988da;
      0x983e5152; 0xa831c66d; 0xb00327c8; 0xbf597fc7; 0xc6e00bf3; 0xd5a79147; 0x06ca6351; 0x14292967;
      0x27b70a85; 0x2e1b2138; 0x4d2c6dfc; 0x53380d13; 0x650a7354; 0x766a0abb; 0x81c2c92e; 0x92722c85;
      0xa2bfe8a1; 0xa81a664b; 0xc24b8b70; 0xc76c51a3; 0xd192e819; 0xd6990624; 0xf40e3585; 0x106aa070;
      0x19a4c116; 0x1e376c08; 0x2748774c; 0x34b0bcb5; 0x391c0cb3; 0x4ed8aa4a; 0x5b9cca4f; 0x682e6ff3;
      0x748f82ee; 0x78a5636f; 0x84c87814; 0x8cc70208; 0x90befffa; 0xa4506ceb; 0xbef9a3f7; 0xc67178f2;
    |]

  type ctx = {
    h : int array; (* 8 words *)
    buf : Bytes.t;
    mutable buf_len : int;
    mutable total : int;
    w : int array;
    mutable finalized : bool;
  }

  let digest_size = 32
  let block_size = 64

  let init () =
    {
      h = [| 0x6a09e667; 0xbb67ae85; 0x3c6ef372; 0xa54ff53a; 0x510e527f; 0x9b05688c; 0x1f83d9ab; 0x5be0cd19 |];
      buf = Bytes.create block_size;
      buf_len = 0;
      total = 0;
      w = Array.make 64 0;
      finalized = false;
    }

  let compress ctx block off =
    let w = ctx.w in
    for i = 0 to 15 do
      let p = off + (4 * i) in
      w.(i) <-
        (Char.code (Bytes.get block p) lsl 24)
        lor (Char.code (Bytes.get block (p + 1)) lsl 16)
        lor (Char.code (Bytes.get block (p + 2)) lsl 8)
        lor Char.code (Bytes.get block (p + 3))
    done;
    for i = 16 to 63 do
      let s0 = rotr w.(i - 15) 7 lxor rotr w.(i - 15) 18 lxor shr w.(i - 15) 3 in
      let s1 = rotr w.(i - 2) 17 lxor rotr w.(i - 2) 19 lxor shr w.(i - 2) 10 in
      w.(i) <- (w.(i - 16) + s0 + w.(i - 7) + s1) land mask
    done;
    let h = ctx.h in
    let a = ref h.(0) and b = ref h.(1) and c = ref h.(2) and d = ref h.(3) in
    let e = ref h.(4) and f = ref h.(5) and g = ref h.(6) and hh = ref h.(7) in
    for i = 0 to 63 do
      let s1 = rotr !e 6 lxor rotr !e 11 lxor rotr !e 25 in
      let ch = (!e land !f) lxor (lnot !e land !g) land mask in
      let t1 = (!hh + s1 + (ch land mask) + k.(i) + w.(i)) land mask in
      let s0 = rotr !a 2 lxor rotr !a 13 lxor rotr !a 22 in
      let maj = (!a land !b) lxor (!a land !c) lxor (!b land !c) in
      let t2 = (s0 + maj) land mask in
      hh := !g;
      g := !f;
      f := !e;
      e := (!d + t1) land mask;
      d := !c;
      c := !b;
      b := !a;
      a := (t1 + t2) land mask
    done;
    h.(0) <- (h.(0) + !a) land mask;
    h.(1) <- (h.(1) + !b) land mask;
    h.(2) <- (h.(2) + !c) land mask;
    h.(3) <- (h.(3) + !d) land mask;
    h.(4) <- (h.(4) + !e) land mask;
    h.(5) <- (h.(5) + !f) land mask;
    h.(6) <- (h.(6) + !g) land mask;
    h.(7) <- (h.(7) + !hh) land mask

  let feed ctx s =
    if ctx.finalized then invalid_arg "Sha256.feed: context already finalized";
    let len = String.length s in
    ctx.total <- ctx.total + len;
    let pos = ref 0 in
    if ctx.buf_len > 0 then begin
      let need = block_size - ctx.buf_len in
      let take = min need len in
      Bytes.blit_string s 0 ctx.buf ctx.buf_len take;
      ctx.buf_len <- ctx.buf_len + take;
      pos := take;
      if ctx.buf_len = block_size then begin
        compress ctx ctx.buf 0;
        ctx.buf_len <- 0
      end
    end;
    let tmp = Bytes.unsafe_of_string s in
    while len - !pos >= block_size do
      compress ctx tmp !pos;
      pos := !pos + block_size
    done;
    if !pos < len then begin
      Bytes.blit_string s !pos ctx.buf 0 (len - !pos);
      ctx.buf_len <- len - !pos
    end

  let word_be out off v =
    Bytes.set out off (Char.chr ((v lsr 24) land 0xff));
    Bytes.set out (off + 1) (Char.chr ((v lsr 16) land 0xff));
    Bytes.set out (off + 2) (Char.chr ((v lsr 8) land 0xff));
    Bytes.set out (off + 3) (Char.chr (v land 0xff))

  let get ctx =
    if ctx.finalized then invalid_arg "Sha256.get: context already finalized";
    let total_bits = ctx.total * 8 in
    let pad_len =
      let rem = (ctx.total + 1) mod block_size in
      if rem <= 56 then 56 - rem + 1 else block_size - rem + 56 + 1
    in
    let tail = Bytes.make (pad_len + 8) '\000' in
    Bytes.set tail 0 '\x80';
    for i = 0 to 7 do
      Bytes.set tail (pad_len + i) (Char.chr ((total_bits lsr (8 * (7 - i))) land 0xff))
    done;
    feed ctx (Bytes.unsafe_to_string tail);
    assert (ctx.buf_len = 0);
    ctx.finalized <- true;
    let out = Bytes.create digest_size in
    for i = 0 to 7 do
      word_be out (4 * i) ctx.h.(i)
    done;
    Bytes.unsafe_to_string out

  let digest s =
    let ctx = init () in
    feed ctx s;
    get ctx
end

module Sha1 = struct
  (* 32-bit words carried in native ints, masked after every operation. *)

  let mask = 0xFFFFFFFF
  let rotl x n = ((x lsl n) lor (x lsr (32 - n))) land mask

  type ctx = {
    mutable h0 : int;
    mutable h1 : int;
    mutable h2 : int;
    mutable h3 : int;
    mutable h4 : int;
    buf : Bytes.t; (* partial block *)
    mutable buf_len : int;
    mutable total : int; (* bytes fed *)
    w : int array; (* message schedule scratch *)
    mutable finalized : bool;
  }

  let digest_size = 20
  let block_size = 64

  let init () =
    {
      h0 = 0x67452301;
      h1 = 0xEFCDAB89;
      h2 = 0x98BADCFE;
      h3 = 0x10325476;
      h4 = 0xC3D2E1F0;
      buf = Bytes.create block_size;
      buf_len = 0;
      total = 0;
      w = Array.make 80 0;
      finalized = false;
    }

  let compress ctx block off =
    let w = ctx.w in
    for i = 0 to 15 do
      let p = off + (4 * i) in
      w.(i) <-
        (Char.code (Bytes.get block p) lsl 24)
        lor (Char.code (Bytes.get block (p + 1)) lsl 16)
        lor (Char.code (Bytes.get block (p + 2)) lsl 8)
        lor Char.code (Bytes.get block (p + 3))
    done;
    for i = 16 to 79 do
      w.(i) <- rotl (w.(i - 3) lxor w.(i - 8) lxor w.(i - 14) lxor w.(i - 16)) 1
    done;
    let a = ref ctx.h0 and b = ref ctx.h1 and c = ref ctx.h2 and d = ref ctx.h3 and e = ref ctx.h4 in
    for i = 0 to 79 do
      let f, k =
        if i < 20 then ((!b land !c) lor (lnot !b land !d) land mask, 0x5A827999)
        else if i < 40 then (!b lxor !c lxor !d, 0x6ED9EBA1)
        else if i < 60 then ((!b land !c) lor (!b land !d) lor (!c land !d), 0x8F1BBCDC)
        else (!b lxor !c lxor !d, 0xCA62C1D6)
      in
      let t = (rotl !a 5 + (f land mask) + !e + k + w.(i)) land mask in
      e := !d;
      d := !c;
      c := rotl !b 30;
      b := !a;
      a := t
    done;
    ctx.h0 <- (ctx.h0 + !a) land mask;
    ctx.h1 <- (ctx.h1 + !b) land mask;
    ctx.h2 <- (ctx.h2 + !c) land mask;
    ctx.h3 <- (ctx.h3 + !d) land mask;
    ctx.h4 <- (ctx.h4 + !e) land mask

  let feed ctx s =
    if ctx.finalized then invalid_arg "Sha1.feed: context already finalized";
    let len = String.length s in
    ctx.total <- ctx.total + len;
    let pos = ref 0 in
    (* top up a partial block first *)
    if ctx.buf_len > 0 then begin
      let need = block_size - ctx.buf_len in
      let take = min need len in
      Bytes.blit_string s 0 ctx.buf ctx.buf_len take;
      ctx.buf_len <- ctx.buf_len + take;
      pos := take;
      if ctx.buf_len = block_size then begin
        compress ctx ctx.buf 0;
        ctx.buf_len <- 0
      end
    end;
    let tmp = Bytes.unsafe_of_string s in
    while len - !pos >= block_size do
      compress ctx tmp !pos;
      pos := !pos + block_size
    done;
    if !pos < len then begin
      Bytes.blit_string s !pos ctx.buf 0 (len - !pos);
      ctx.buf_len <- len - !pos
    end

  let word_be out off v =
    Bytes.set out off (Char.chr ((v lsr 24) land 0xff));
    Bytes.set out (off + 1) (Char.chr ((v lsr 16) land 0xff));
    Bytes.set out (off + 2) (Char.chr ((v lsr 8) land 0xff));
    Bytes.set out (off + 3) (Char.chr (v land 0xff))

  let get ctx =
    if ctx.finalized then invalid_arg "Sha1.get: context already finalized";
    let total_bits = ctx.total * 8 in
    let pad_len =
      let rem = (ctx.total + 1) mod block_size in
      if rem <= 56 then 56 - rem + 1 else block_size - rem + 56 + 1
    in
    let tail = Bytes.make (pad_len + 8) '\000' in
    Bytes.set tail 0 '\x80';
    for i = 0 to 7 do
      Bytes.set tail (pad_len + i) (Char.chr ((total_bits lsr (8 * (7 - i))) land 0xff))
    done;
    feed ctx (Bytes.unsafe_to_string tail);
    assert (ctx.buf_len = 0);
    ctx.finalized <- true;
    let out = Bytes.create digest_size in
    word_be out 0 ctx.h0;
    word_be out 4 ctx.h1;
    word_be out 8 ctx.h2;
    word_be out 12 ctx.h3;
    word_be out 16 ctx.h4;
    Bytes.unsafe_to_string out

  let digest s =
    let ctx = init () in
    feed ctx s;
    get ctx
end
