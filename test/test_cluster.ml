(* Sharded cluster: partition arithmetic, cross-shard reads against a
   single-store oracle, aggregated freshness proofs (and their tamper
   surface), deletion-epoch coherence, shard failover, and the cluster
   vocabulary's wire codecs. *)

open Worm_core
open Worm_testkit.Testkit
module Clock = Worm_simclock.Clock
module Device = Worm_scpu.Device
module Disk = Worm_simdisk.Disk
module Partition = Worm_cluster.Partition
module Router = Worm_cluster.Shard_router
module Cluster_proof = Worm_cluster.Cluster_proof
module Cluster_scrub = Worm_cluster.Cluster_scrub
module Report = Worm_audit.Report
module Message = Worm_proto.Message
module Cluster_server = Worm_proto.Cluster_server

let fresh_router ?(shards = 2) ?(mirrored = true) () =
  let clock = Clock.create () in
  let config =
    {
      Router.default_config with
      Router.shards;
      mirrored;
      device_config = Device.test_config;
      disk_latency = Disk.zero_latency;
    }
  in
  let seed = Printf.sprintf "cluster-%d" (incr counter; !counter) in
  (Router.create ~config ~seed ~ca:(Lazy.force ca) ~clock (), clock)

let write_exn router ?(policy = short_policy ~retention_s:10_000. ()) blocks =
  match Router.write router ~policy ~blocks with
  | Ok sn -> sn
  | Error e -> Alcotest.fail e

let proof_exn router =
  match Router.freshness_proof router with Ok p -> p | Error e -> Alcotest.fail e

(* verdict plus verified content; two reads agree iff same bytes *)
let fp = function
  | Client.Valid_data { blocks; _ } -> "valid:" ^ String.concat "\x00" blocks
  | v -> Client.verdict_name v

(* ---------- partition ---------- *)

let prop_partition_roundtrip =
  QCheck.Test.make ~name:"partition is total and invertible" ~count:500
    QCheck.(pair (int_range 1 12) (int_range 1 100_000))
    (fun (n, g) ->
      let g = Serial.of_int g in
      let shard = Partition.shard_of ~shards:n g in
      let local = Partition.local_of ~shards:n g in
      shard >= 0 && shard < n
      && Serial.to_int local >= 1
      && Serial.equal (Partition.global_of ~shards:n ~shard local) g)

let prop_partition_coverage =
  QCheck.Test.make ~name:"locals_covered partitions the global space" ~count:500
    QCheck.(pair (int_range 1 12) (int_range 0 100_000))
    (fun (n, g) ->
      let total =
        List.fold_left
          (fun acc s ->
            acc + Serial.to_int (Partition.locals_covered ~shards:n ~shard:s ~global_current:(Serial.of_int g)))
          0 (List.init n Fun.id)
      in
      total = g)

let test_partition_sentinel () =
  Alcotest.(check int) "zero maps to shard 0" 0 (Partition.shard_of ~shards:5 Serial.zero);
  Alcotest.(check bool) "zero maps to local zero" true
    (Serial.equal Serial.zero (Partition.local_of ~shards:5 Serial.zero));
  Alcotest.check_raises "zero shards rejected" (Invalid_argument "Partition: shard count must be >= 1")
    (fun () -> ignore (Partition.shard_of ~shards:0 (Serial.of_int 1)))

(* ---------- cross-shard reads vs a single-store oracle ---------- *)

let test_read_many_matches_single_store () =
  let records = 9 in
  let payloads = List.init records (fun i -> [ Printf.sprintf "payload-%d" i; "tail" ]) in
  let policy = short_policy ~retention_s:10_000. () in
  (* sharded run *)
  let router, _clock = fresh_router ~shards:3 ~mirrored:false () in
  List.iter (fun blocks -> ignore (write_exn router ~policy blocks)) payloads;
  let verifiers = Router.verifiers router in
  let globals = List.init records (fun i -> Serial.of_int (i + 1)) in
  let routed =
    List.map (fun (g, shard, response) -> fp (Router.verify_read router verifiers g (shard, response)))
      (Router.read_many router globals)
  in
  (* single-store oracle, same payloads in the same order *)
  let env = fresh_env () in
  List.iter (fun blocks -> ignore (Worm.write env.store ~policy ~blocks)) payloads;
  let oracle = List.map (fun g -> fp (Client.verify_read env.client ~sn:g (Worm.read env.store g))) globals in
  Alcotest.(check (list string)) "verdicts and content identical across the partition" oracle routed;
  (* a response replayed from the wrong shard is a violation regardless of its content *)
  let g = Serial.of_int 1 in
  let wrong_shard = (Partition.shard_of ~shards:3 g + 1) mod 3 in
  match Router.verify_read router verifiers g (wrong_shard, snd (Router.read router g)) with
  | Client.Violation (Client.Wrong_serial :: _) -> ()
  | v -> Alcotest.fail ("wrong-shard response accepted: " ^ Client.verdict_name v)

(* ---------- aggregated freshness proof ---------- *)

let test_proof_verifies_and_is_coherent () =
  let router, clock = fresh_router ~shards:3 ~mirrored:false () in
  for i = 1 to 7 do
    ignore (write_exn router [ Printf.sprintf "r%d" i ])
  done;
  let proof = proof_exn router in
  (match Cluster_proof.verify ~ca:(ca_pub ()) ~now:(Clock.now clock) proof with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match Cluster_proof.global_current proof with
  | Ok g -> Alcotest.(check int) "coherent global bound" 7 (Serial.to_int g)
  | Error e -> Alcotest.fail e);
  (* decode . encode is identity and digest-checked *)
  let encoded = Worm_util.Codec.encode Cluster_proof.encode proof in
  match Worm_util.Codec.decode Cluster_proof.decode encoded with
  | Ok proof' ->
      Alcotest.(check string) "canonical reencoding" encoded (Worm_util.Codec.encode Cluster_proof.encode proof')
  | Error e -> Alcotest.fail e

let test_proof_rejects_tampering () =
  let router, clock = fresh_router ~shards:2 ~mirrored:false () in
  for i = 1 to 4 do
    ignore (write_exn router [ Printf.sprintf "r%d" i ])
  done;
  let proof = proof_exn router in
  let now = Clock.now clock in
  let b0, b1 =
    match proof.Cluster_proof.shards with [ a; b ] -> (a, b) | _ -> Alcotest.fail "expected 2 bounds"
  in
  (* a replayed stale bound breaks the coherence equation: shard 0 claims
     0 locals while shard 1 claims 2, which no round-robin history allows *)
  let stale =
    {
      b0 with
      Cluster_proof.current = { b0.Cluster_proof.current with Firmware.sn = Serial.zero };
    }
  in
  (match Cluster_proof.global_current (Cluster_proof.make ~epoch:proof.Cluster_proof.epoch [ stale; b1 ]) with
  | Error _ -> ()
  | Ok g -> Alcotest.failf "incoherent bounds accepted as G=%d" (Serial.to_int g));
  (* ...and the forged serial also breaks the shard's signature *)
  (match Cluster_proof.verify ~ca:(ca_pub ()) ~now (Cluster_proof.make ~epoch:proof.Cluster_proof.epoch [ stale; b1 ]) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "forged current bound verified");
  (* duplicated shard indices are structural nonsense *)
  (match
     Cluster_proof.verify ~ca:(ca_pub ()) ~now (Cluster_proof.make ~epoch:proof.Cluster_proof.epoch [ b0; b0 ])
   with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "duplicate shard index verified");
  (* a doctored digest is caught before any signature work *)
  (match Cluster_proof.verify ~ca:(ca_pub ()) ~now { proof with Cluster_proof.agg_digest = String.make 32 '\x00' } with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "wrong digest verified");
  (* ...and refuses to even decode *)
  let encoded =
    Worm_util.Codec.encode Cluster_proof.encode { proof with Cluster_proof.agg_digest = String.make 32 '\x00' }
  in
  match Worm_util.Codec.decode Cluster_proof.decode encoded with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "digest-mismatched proof decoded"

(* ---------- deletion epochs ---------- *)

let test_epoch_coherence_across_shard_compactions () =
  let router, clock = fresh_router ~shards:2 ~mirrored:false () in
  let short = short_policy ~retention_s:10. () in
  let long = short_policy ~retention_s:10_000. () in
  (* interleave: shard 0 gets odd globals' short records, both stripes
     carry a long anchor so neither store empties out *)
  ignore (write_exn router ~policy:long [ "anchor-0" ]);
  ignore (write_exn router ~policy:long [ "anchor-1" ]);
  for i = 1 to 6 do
    ignore (write_exn router ~policy:short [ Printf.sprintf "short-%d" i ])
  done;
  Alcotest.(check int) "epoch starts at zero" 0 (Router.epoch router);
  Clock.advance clock (Clock.ns_of_sec 20.);
  let deleted = List.fold_left (fun acc (_, n) -> acc + n) 0 (Router.expire_due router) in
  Alcotest.(check int) "retention monitor expired the short records" 6 deleted;
  (* nothing collapsed yet: expiry alone must not bump the epoch *)
  Alcotest.(check int) "expiry does not bump the epoch" 0 (Router.epoch router);
  let expelled0 = Router.compact_shard router 0 in
  Alcotest.(check bool) "shard 0 expelled entries" true (expelled0 > 0);
  Alcotest.(check int) "one shard's collapse bumps the epoch once" 1 (Router.epoch router);
  let p1 = proof_exn router in
  Alcotest.(check int) "proof carries the epoch" 1 p1.Cluster_proof.epoch;
  let expelled1 = Router.compact_shard router 1 in
  Alcotest.(check bool) "shard 1 expelled entries" true (expelled1 > 0);
  Alcotest.(check int) "second collapse bumps it again" 2 (Router.epoch router);
  (* an idempotent re-collapse expels nothing and must not bump *)
  let again = Router.compact_shard router 0 in
  Alcotest.(check int) "re-collapse expels nothing" 0 again;
  Alcotest.(check int) "no-op collapse leaves the epoch" 2 (Router.epoch router);
  let p2 = proof_exn router in
  Alcotest.(check int) "fresh proof carries the new epoch" 2 p2.Cluster_proof.epoch;
  match Cluster_proof.verify ~ca:(ca_pub ()) ~now:(Clock.now clock) p2 with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

(* ---------- failover ---------- *)

let test_kill_fence_recover_rescrub () =
  let router, clock = fresh_router ~shards:2 ~mirrored:true () in
  let records = 8 in
  let before =
    let sns = List.init records (fun i -> write_exn router [ Printf.sprintf "r%d" i ]) in
    let verifiers = Router.verifiers router in
    List.map (fun g -> fp (Router.verify_read router verifiers g (Router.read router g))) sns
  in
  Router.kill router 1;
  Alcotest.(check (list int)) "probe names the dead shard" [ 1 ] (Router.probe router);
  (match Router.fence router 1 with Ok () -> () | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "fenced shard refuses its stripe" true
    (match Router.write router ~policy:(short_policy ()) ~blocks:[ "x" ] with
    | Error _ -> true
    | Ok sn -> Partition.shard_of ~shards:2 sn <> 1);
  (match Router.recover router 1 with
  | Ok r -> Alcotest.(check int) "resync rebuilt the stripe" (records / 2) r.Router.resynced
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "shard active again" true (Router.shard_state router 1 = Router.Active);
  let after =
    let verifiers = Router.verifiers router in
    List.map
      (fun i ->
        let g = Serial.of_int (i + 1) in
        fp (Router.verify_read router verifiers g (Router.read router g)))
      (List.init records Fun.id)
  in
  Alcotest.(check (list string)) "promoted store serves identical content" before after;
  (* the rebuilt mirror holds fresh serials: a second zeroization of the
     same shard is outside the verified contract and must say so *)
  Router.kill router 1;
  (match Router.fence router 1 with Ok () -> () | Error e -> Alcotest.fail e);
  (match Router.recover router 1 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "second failover of a rebuilt mirror must be refused");
  ignore clock;
  (* scrub-ability after the *first* failover is the part the cluster
     guarantees; rebuild a healthy router state for it *)
  let router2, _ = fresh_router ~shards:2 ~mirrored:true () in
  for i = 1 to records do
    ignore (write_exn router2 [ Printf.sprintf "s%d" i ])
  done;
  Router.kill router2 0;
  (match Router.fence router2 0 with Ok () -> () | Error e -> Alcotest.fail e);
  (match Router.recover router2 0 with Ok _ -> () | Error e -> Alcotest.fail e);
  let outcome = Cluster_scrub.run router2 in
  Alcotest.(check bool) "post-failover scrub completes" true outcome.Cluster_scrub.merged.Report.pass_complete;
  Alcotest.(check int) "post-failover scrub is clean" 0
    (List.length outcome.Cluster_scrub.merged.Report.findings)

let test_fenced_shard_degrades_scrub_honestly () =
  let router, _clock = fresh_router ~shards:2 ~mirrored:false () in
  for i = 1 to 4 do
    ignore (write_exn router [ Printf.sprintf "r%d" i ])
  done;
  Router.kill router 0;
  (match Router.fence router 0 with Ok () -> () | Error e -> Alcotest.fail e);
  (* no mirror to fall back on: the stripe is unscannable and the merged
     report must refuse to call the pass complete *)
  let outcome = Cluster_scrub.run router in
  Alcotest.(check (list int)) "fenced shard skipped" [ 0 ] outcome.Cluster_scrub.skipped;
  Alcotest.(check bool) "partial coverage is not a clean bill" false
    outcome.Cluster_scrub.merged.Report.pass_complete;
  Alcotest.(check bool) "the gap is a finding" true (outcome.Cluster_scrub.merged.Report.findings <> [])

(* ---------- wire codecs and the cluster front end ---------- *)

let test_cluster_message_codecs () =
  let router, _clock = fresh_router ~shards:2 ~mirrored:false () in
  for i = 1 to 4 do
    ignore (write_exn router [ Printf.sprintf "r%d" i ])
  done;
  let front = Cluster_server.create router in
  let requests =
    [
      Message.Cluster_hello;
      Message.Cluster_read (Serial.of_int 3);
      Message.Cluster_read_many [ Serial.of_int 1; Serial.of_int 4 ];
      Message.Cluster_proof_get;
    ]
  in
  List.iter
    (fun r ->
      match Message.decode_request (Message.encode_request r) with
      | Ok r' -> Alcotest.(check bool) ("request roundtrip: " ^ Message.describe_request r) true (r = r')
      | Error e -> Alcotest.fail e)
    requests;
  (* live responses of every cluster shape, via the real front end *)
  List.iter
    (fun r ->
      let response = Cluster_server.handle front r in
      (match response with
      | Message.Protocol_error e -> Alcotest.fail ("front end refused " ^ Message.describe_request r ^ ": " ^ e)
      | _ -> ());
      let encoded = Message.encode_response response in
      match Message.decode_response encoded with
      | Ok response' ->
          Alcotest.(check string)
            ("response canonical: " ^ Message.describe_response response)
            encoded (Message.encode_response response')
      | Error e -> Alcotest.fail e)
    requests;
  (* vocabulary boundaries: cluster requests bounce off a single-store
     server, single-store reads bounce off the cluster front end *)
  let env = fresh_env () in
  let single = Worm_proto.Server.create env.store in
  (match Worm_proto.Server.handle single Message.Cluster_hello with
  | Message.Protocol_error _ -> ()
  | _ -> Alcotest.fail "single-store server answered a cluster request");
  match Cluster_server.handle front (Message.Read (Serial.of_int 1)) with
  | Message.Protocol_error _ -> ()
  | _ -> Alcotest.fail "cluster front end answered a single-store read"

let test_cluster_server_routes_and_survives_failover () =
  let router, _clock = fresh_router ~shards:2 ~mirrored:true () in
  let front = Cluster_server.create router in
  let policy = short_policy ~retention_s:10_000. () in
  for i = 1 to 6 do
    match Cluster_server.handle front (Message.Write { policy; tenant = ""; blocks = [ Printf.sprintf "w%d" i ] }) with
    | Message.Write_ack { sn } -> Alcotest.(check int) "dense globals via the front end" i (Serial.to_int sn)
    | r -> Alcotest.fail (Message.describe_response r)
  done;
  (* shard servers expose the per-shard stores; failover swaps them out *)
  let shard_server_exn i =
    match Cluster_server.shard_server front i with
    | Some s -> s
    | None -> Alcotest.failf "shard %d has no serving store" i
  in
  let s0 = shard_server_exn 0 in
  Router.kill router 0;
  (match Router.fence router 0 with Ok () -> () | Error e -> Alcotest.fail e);
  (match Router.recover router 0 with Ok _ -> () | Error e -> Alcotest.fail e);
  let s0' = shard_server_exn 0 in
  Alcotest.(check bool) "failover invalidates the cached shard server" false (s0 == s0');
  (* and the routed read path still answers with verifiable content *)
  match Cluster_server.handle front (Message.Cluster_read (Serial.of_int 1)) with
  | Message.Cluster_read_reply { shard; response; _ } ->
      let verifiers = Router.verifiers router in
      (match Router.verify_read router verifiers (Serial.of_int 1) (shard, response) with
      | Client.Valid_data _ -> ()
      | v -> Alcotest.fail (Client.verdict_name v))
  | r -> Alcotest.fail (Message.describe_response r)

let suite =
  [
    ("partition roundtrip (qcheck)", `Quick, fun () -> QCheck.Test.check_exn prop_partition_roundtrip);
    ("partition coverage (qcheck)", `Quick, fun () -> QCheck.Test.check_exn prop_partition_coverage);
    ("partition sentinel", `Quick, test_partition_sentinel);
    ("read_many matches single store", `Quick, test_read_many_matches_single_store);
    ("proof verifies and is coherent", `Quick, test_proof_verifies_and_is_coherent);
    ("proof rejects tampering", `Quick, test_proof_rejects_tampering);
    ("epoch coherent across compactions", `Quick, test_epoch_coherence_across_shard_compactions);
    ("kill / fence / recover / re-scrub", `Quick, test_kill_fence_recover_rescrub);
    ("fenced shard degrades scrub honestly", `Quick, test_fenced_shard_degrades_scrub_honestly);
    ("cluster message codecs", `Quick, test_cluster_message_codecs);
    ("cluster server routes across failover", `Quick, test_cluster_server_routes_and_survives_failover);
  ]

let () = Alcotest.run "worm_cluster" [ ("cluster", suite) ]
