(* The paper's threat model, executed: every attack Mallory (a super-user
   insider with physical access, §2.1) can mount with the powers the
   paper grants her, asserted DETECTED by verifying clients.

   Theorem 1: committed records cannot be altered or removed undetected.
   Theorem 2: insiders cannot hide active records by claiming they
   expired or were never stored. *)

open Worm_core
open Worm_testkit.Testkit
module Clock = Worm_simclock.Clock
module Disk = Worm_simdisk.Disk

let expect_violation name env sn =
  match verdict env sn with
  | Client.Violation _ -> ()
  | v -> Alcotest.failf "%s: expected violation, got %s" name (Client.verdict_name v)

let expect_violation_response name env sn response =
  match Client.verify_read env.client ~sn response with
  | Client.Violation _ -> ()
  | v -> Alcotest.failf "%s: expected violation, got %s" name (Client.verdict_name v)

(* ---------- Theorem 1: alteration ---------- *)

let test_data_tamper_detected () =
  let env = fresh_env () in
  let sn = write env ~blocks:[ "the original record" ] () in
  let mallory = Adversary.create env.store in
  Alcotest.(check bool) "tampered" true (Adversary.tamper_record_data mallory sn);
  expect_violation "bit flip on platter" env sn

let test_data_substitution_detected () =
  (* Mallory rewrites the data AND the VRDT's cached hash field; only the
     signatures resist her. *)
  let env = fresh_env () in
  let sn = write env ~blocks:[ "incriminating ledger" ] () in
  let mallory = Adversary.create env.store in
  Alcotest.(check bool) "substituted" true (Adversary.substitute_record_data mallory sn "sanitized ledger");
  (match verdict env sn with
  | Client.Violation vs ->
      Alcotest.(check bool) "datasig flagged" true (List.mem Client.Data_witness_invalid vs)
  | v -> Alcotest.failf "substitution: %s" (Client.verdict_name v))

let test_retention_shortening_detected_by_client () =
  let env = fresh_env () in
  let sn = write env ~policy:(short_policy ~retention_s:10_000. ()) () in
  let mallory = Adversary.create env.store in
  Alcotest.(check bool) "attr rewritten" true
    (Adversary.tamper_attr_retention mallory sn ~new_retention_ns:1L);
  (match verdict env sn with
  | Client.Violation vs ->
      Alcotest.(check bool) "metasig flagged" true (List.mem Client.Meta_witness_invalid vs)
  | v -> Alcotest.failf "retention tamper: %s" (Client.verdict_name v))

let test_retention_shortening_cannot_trigger_deletion () =
  (* Even if no client ever reads the record, the SCPU refuses to issue a
     deletion proof for the falsified attributes. *)
  let env = fresh_env () in
  let sn = write env ~policy:(short_policy ~retention_s:10_000. ()) () in
  let mallory = Adversary.create env.store in
  ignore (Adversary.tamper_attr_retention mallory sn ~new_retention_ns:1L);
  Clock.advance env.clock (Clock.ns_of_sec 100.);
  match Vrdt.find (Worm.vrdt env.store) sn with
  | Some (Vrdt.Active forged) -> begin
      match Firmware.delete (Worm.firmware env.store) ~vrd_bytes:(Vrd.to_bytes forged) with
      | Error Firmware.Bad_witness -> ()
      | Ok _ -> Alcotest.fail "SCPU deleted on forged attributes"
      | Error e -> Alcotest.failf "unexpected: %s" (Firmware.error_to_string e)
    end
  | _ -> Alcotest.fail "record vanished"

let test_premature_destruction_detected () =
  let env = fresh_env () in
  let sn = write env ~blocks:[ "evidence" ] () in
  let mallory = Adversary.create env.store in
  Alcotest.(check bool) "destroyed" true (Adversary.premature_destroy mallory sn);
  expect_violation "data destroyed, VRDT intact" env sn

let test_fake_deletion_proof_detected () =
  let env = fresh_env () in
  let sn = write env () in
  let mallory = Adversary.create env.store in
  Adversary.forge_deletion_proof mallory sn;
  expect_violation "fabricated deletion proof" env sn

let test_replayed_deletion_proof_detected () =
  let env = fresh_env () in
  let donor = write env ~policy:(short_policy ~retention_s:10. ()) () in
  let victim = write env ~policy:(short_policy ~retention_s:10_000. ()) () in
  ignore (expire_all env ~after_s:20.);
  let mallory = Adversary.create env.store in
  Alcotest.(check bool) "replayed" true (Adversary.replay_deletion_proof mallory ~victim ~donor);
  expect_violation "donor proof replayed for victim" env victim

let test_rollback_detected () =
  (* The replication attack of §1: copy the whole store, add a record,
     then restore the old image. The new record must not vanish
     silently. *)
  let env = fresh_env () in
  ignore (write env ~blocks:[ "before snapshot" ] ());
  Worm.heartbeat env.store;
  let mallory = Adversary.create env.store in
  Adversary.capture mallory;
  let sn_new = write env ~blocks:[ "after snapshot — the regretted record" ] () in
  Alcotest.(check bool) "rolled back" true (Adversary.rollback mallory);
  (* Time passes; the read path refreshes its bound from the SCPU, whose
     monotonic serial counter SURVIVED the media rollback — the reverted
     host has no consistent story left to tell. *)
  Clock.advance env.clock (Clock.ns_of_min 6.);
  let response = Worm.read env.store sn_new in
  expect_violation_response "rollback hides the record" env sn_new response

(* ---------- Theorem 2: hiding ---------- *)

let test_hiding_with_fresh_bound_impossible () =
  (* If Mallory hides the record but serves a FRESH current bound, the
     bound covers the record's SN and proves nothing. *)
  let env = fresh_env () in
  let sn = write env ~blocks:[ "hide me" ] () in
  let mallory = Adversary.create env.store in
  Alcotest.(check bool) "hidden" true (Adversary.hide_record mallory sn);
  (* past the heartbeat, the served bound covers sn: nothing to hide behind *)
  Clock.advance env.clock (Clock.ns_of_min 6.);
  expect_violation "hidden record, honest read path" env sn

let test_staleness_window_limitation () =
  (* Documented limitation of §4.2.1 option (ii): a record hidden within
     the bound-staleness tolerance of its write CAN transiently appear
     never-written, because a genuinely fresh bound predating the write
     still verifies. The paper's answer is the tolerance itself (a few
     minutes) or option (i), querying the SCPU directly. *)
  let env = fresh_env () in
  ignore (write env ());
  Worm.heartbeat env.store;
  let mallory = Adversary.create env.store in
  Adversary.capture mallory;
  let sn = write env ~blocks:[ "just written" ] () in
  ignore (Adversary.hide_record mallory sn);
  (match Adversary.read_with_stale_current mallory sn with
  | Some response -> begin
      match Client.verify_read env.client ~sn response with
      | Client.Never_written -> () (* the transient lie succeeds... *)
      | v -> Alcotest.failf "expected transient success, got %s" (Client.verdict_name v)
    end
  | None -> Alcotest.fail "no captured bound");
  (* ...but only within the tolerance: minutes later the same lie fails *)
  Clock.advance env.clock (Clock.ns_of_min 6.);
  match Adversary.read_with_stale_current mallory sn with
  | Some response -> expect_violation_response "lie expires with the bound" env sn response
  | None -> Alcotest.fail "no captured bound"

let test_option_i_closes_staleness_window () =
  (* §4.2.1 option (i): clients who query the SCPU directly for the
     current bound have NO hiding window, even transiently. *)
  let env = fresh_env () in
  let fw = Worm.firmware env.store in
  let direct = Client.Direct_scpu (fun () -> Firmware.current_bound fw) in
  let client_i = Client.for_store ~ca:(ca_pub ()) ~clock:env.clock ~freshness:direct env.store in
  ignore (write env ());
  Worm.heartbeat env.store;
  let mallory = Adversary.create env.store in
  Adversary.capture mallory;
  let sn = write env ~blocks:[ "just written" ] () in
  ignore (Adversary.hide_record mallory sn);
  (* zero time has passed; the captured bound is "fresh" by timestamp,
     but the direct query exposes the lie immediately *)
  match Adversary.read_with_stale_current mallory sn with
  | Some response -> begin
      match Client.verify_read client_i ~sn response with
      | Client.Violation _ -> ()
      | v -> Alcotest.failf "option (i) failed to close the window: %s" (Client.verdict_name v)
    end
  | None -> Alcotest.fail "no captured bound"

let test_hiding_with_stale_bound_detected () =
  (* ...and if she serves the CAPTURED pre-write bound instead, the
     client rejects it as stale (§4.2.1 option ii). *)
  let env = fresh_env () in
  ignore (write env ());
  Worm.heartbeat env.store;
  let mallory = Adversary.create env.store in
  Adversary.capture mallory;
  (* the regretted record is written after the capture *)
  let sn = write env ~blocks:[ "regretted" ] () in
  ignore (Adversary.hide_record mallory sn);
  (* client reads are not instantaneous: enough time passes for the
     captured bound to age out *)
  Clock.advance env.clock (Clock.ns_of_min 6.);
  match Adversary.read_with_stale_current mallory sn with
  | Some response -> expect_violation_response "stale bound replay" env sn response
  | None -> Alcotest.fail "no stale bound available"

let test_stale_base_bound_replay_detected () =
  let env = fresh_env () in
  (* delete everything so the base moves, and capture the old base *)
  let sn1 = write env ~policy:(short_policy ~retention_s:10. ()) () in
  ignore (Worm.read env.store sn1);
  let mallory = Adversary.create env.store in
  Adversary.capture mallory;
  Clock.advance env.clock (Clock.ns_of_hours 2.);
  (* the captured base bound has expired; replaying it fails *)
  match Adversary.stale_base_response mallory with
  | Some response -> expect_violation_response "expired base bound" env sn1 response
  | None -> Alcotest.fail "no captured base"

let test_window_mix_and_match_detected () =
  (* Combine the lower bound of window A with the upper bound of window B
     to cover the live record between them — exactly what correlated
     window IDs prevent (§4.2.1). *)
  let env = fresh_env () in
  let long = short_policy ~retention_s:100_000. () in
  ignore (Worm.write env.store ~policy:long ~blocks:[ "anchor" ]);
  ignore (write_n env ~retention_s:10. 3) (* sns 2-4: window A *);
  let victim = Worm.write env.store ~policy:long ~blocks:[ "victim" ] (* sn 5 *) in
  ignore (write_n env ~retention_s:10. 3) (* sns 6-8: window B *);
  ignore (Worm.write env.store ~policy:long ~blocks:[ "anchor" ]);
  ignore (expire_all env ~after_s:20.);
  ignore (Worm.compact_windows env.store);
  let windows =
    List.sort (fun a b -> Serial.compare a.Firmware.lo b.Firmware.lo) (Worm.deletion_windows env.store)
  in
  match windows with
  | [ wa; wb ] ->
      let forged = Adversary.forge_window ~lo_from:wa ~hi_from:wb in
      (match Client.verify_read env.client ~sn:victim forged with
      | Client.Violation vs ->
          Alcotest.(check bool) "window bound mismatch flagged" true (List.mem Client.Window_bound_invalid vs)
      | v -> Alcotest.failf "mix-and-match: %s" (Client.verdict_name v));
      (* sanity: each genuine window alone does not cover the victim *)
      expect_violation_response "window A alone" env victim (Proof.Proof_in_window wa)
  | ws -> Alcotest.failf "expected 2 windows, got %d" (List.length ws)

let test_denying_server_always_caught () =
  (* A fully dishonest read server using its best available lie for every
     query about a live record is detected on every single one. *)
  let env = fresh_env () in
  Worm.heartbeat env.store;
  let mallory = Adversary.create env.store in
  Adversary.capture mallory;
  let sns = write_n env 8 in
  Clock.advance env.clock (Clock.ns_of_min 6.);
  List.iter
    (fun sn ->
      let response = Adversary.read_denying mallory sn in
      expect_violation_response "denial" env sn response)
    sns

let test_refusal_flagged_end_to_end () =
  (* A refusal is never a legitimate answer (Theorem 2): clients treat it
     as a violation, and the continuous scrubber classifies WHICH lie it
     is — destroyed data behind a live descriptor vs. a flat absence
     claim with no proof. *)
  let env = fresh_env () in
  Worm.heartbeat env.store;
  let destroyed = write env ~blocks:[ "destroy me" ] () in
  let hidden = write env ~blocks:[ "hide me" ] () in
  let bystander = write env ~blocks:[ "bystander" ] () in
  let mallory = Adversary.create env.store in
  Alcotest.(check bool) "destroyed" true (Adversary.premature_destroy mallory destroyed);
  Alcotest.(check bool) "hidden" true (Adversary.hide_record mallory hidden);
  (* past the staleness tolerance the refreshed bound covers the hidden
     serial, so the honest read path has nothing left but a refusal *)
  Clock.advance env.clock (Clock.ns_of_min 6.);
  (* both reads now come back Refused; no client accepts that *)
  expect_violation "destroyed data refused" env destroyed;
  expect_violation "hidden record refused" env hidden;
  (* the scrubber turns the same refusals into classified findings *)
  let module Scrubber = Worm_audit.Scrubber in
  let module Finding = Worm_audit.Finding in
  let s = Scrubber.create ~store:env.store ~client:env.client () in
  let report = Scrubber.run_pass s in
  let cls_of sn =
    match
      List.find_opt (fun f -> f.Finding.subject = Finding.Record sn) report.Worm_audit.Report.findings
    with
    | Some f -> Finding.cls_name f.Finding.cls
    | None -> Alcotest.failf "scrubber missed %s" (Serial.to_string sn)
  in
  Alcotest.(check string) "live descriptor, gone data" "unreadable" (cls_of destroyed);
  Alcotest.(check string) "no descriptor, no proof" "missing-proof" (cls_of hidden);
  Alcotest.(check int) "nothing else flagged" 2 (List.length report.Worm_audit.Report.findings);
  check_verdict "bystander untouched" "valid-data" env bystander

let test_cross_store_deletion_proof_rejected () =
  (* A deletion proof minted by ANOTHER Strong WORM store (same CA!) must
     not transplant: statements bind the store identity. *)
  let env_a = fresh_env () in
  let env_b = fresh_env () in
  let sn_b = write env_b ~policy:(short_policy ~retention_s:10. ()) () in
  ignore (expire_all env_b ~after_s:20.);
  let proof_b =
    match Worm.read env_b.store sn_b with
    | Proof.Proof_deleted { proof; _ } -> proof
    | r -> Alcotest.fail (Proof.describe r)
  in
  (* same SN exists and is live in store A *)
  let sn_a = write env_a () in
  Alcotest.(check int64) "same serial number" (Serial.to_int64 sn_b) (Serial.to_int64 sn_a);
  expect_violation_response "foreign deletion proof" env_a sn_a
    (Proof.Proof_deleted { sn = sn_a; proof = proof_b })

(* ---------- tamper response ---------- *)

let test_physical_attack_zeroizes () =
  let env = fresh_env () in
  let sn = write env () in
  (* reads continue to work from the host side *)
  Worm_scpu.Device.tamper_respond env.device;
  check_verdict "existing records still verifiable" "valid-data" env sn;
  (* but no new records can be witnessed *)
  match write env () with
  | exception Worm_scpu.Device.Tamper_detected -> ()
  | _ -> Alcotest.fail "zeroized SCPU still witnessing"

(* ---------- secure deletion (§1 requirement) ---------- *)

let test_secure_deletion_leaves_no_hints () =
  let env = fresh_env () in
  let sn = write env ~blocks:[ "top secret payload" ] ~policy:(short_policy ~retention_s:10. ()) () in
  let rdl =
    match Vrdt.find (Worm.vrdt env.store) sn with
    | Some (Vrdt.Active vrd) -> vrd.Vrd.rdl
    | _ -> Alcotest.fail "missing"
  in
  ignore (expire_all env ~after_s:20.);
  (* forensic media access recovers only overwrite patterns *)
  List.iter
    (fun rd ->
      match Disk.Raw.residue env.disk rd with
      | Some residue ->
          Alcotest.(check bool) "no plaintext" false (String.equal residue "top secret payload")
      | None -> Alcotest.fail "no residue record")
    rdl;
  (* and the VRDT entry is a deletion proof, not a ghost of the record *)
  match Vrdt.find (Worm.vrdt env.store) sn with
  | Some (Vrdt.Deleted _) -> ()
  | _ -> Alcotest.fail "VRDT still hints at the record"

let suite =
  [
    ("T1: data tamper detected", `Quick, test_data_tamper_detected);
    ("T1: data substitution detected", `Quick, test_data_substitution_detected);
    ("T1: retention shortening detected", `Quick, test_retention_shortening_detected_by_client);
    ("T1: forged attrs cannot trigger deletion", `Quick, test_retention_shortening_cannot_trigger_deletion);
    ("T1: premature destruction detected", `Quick, test_premature_destruction_detected);
    ("T1: fake deletion proof detected", `Quick, test_fake_deletion_proof_detected);
    ("T1: replayed deletion proof detected", `Quick, test_replayed_deletion_proof_detected);
    ("T1: rollback/replication detected", `Quick, test_rollback_detected);
    ("T2: hiding with fresh bound impossible", `Quick, test_hiding_with_fresh_bound_impossible);
    ("T2: staleness-window limitation documented", `Quick, test_staleness_window_limitation);
    ("T2: option (i) closes the staleness window", `Quick, test_option_i_closes_staleness_window);
    ("T2: hiding with stale bound detected", `Quick, test_hiding_with_stale_bound_detected);
    ("T2: stale base bound replay detected", `Quick, test_stale_base_bound_replay_detected);
    ("T2: window mix-and-match detected", `Quick, test_window_mix_and_match_detected);
    ("T2: denying server always caught", `Quick, test_denying_server_always_caught);
    ("T2: refusal flagged end to end", `Quick, test_refusal_flagged_end_to_end);
    ("T2: cross-store proof transplant rejected", `Quick, test_cross_store_deletion_proof_rejected);
    ("physical attack zeroizes", `Quick, test_physical_attack_zeroizes);
    ("secure deletion leaves no hints", `Quick, test_secure_deletion_leaves_no_hints);
  ]

let () = Alcotest.run "worm_attacks" [ ("attacks", suite) ]
