(* Simulator and workload tests: the qualitative claims of the paper's
   evaluation must hold as ordering relations over the measured numbers
   (absolute values live in EXPERIMENTS.md, shapes are asserted here). *)

module Sim = Worm_sim.Sim
module Workload = Worm_workload.Workload
module Drbg = Worm_crypto.Drbg
module Disk = Worm_simdisk.Disk
open Worm_core

(* One shared env: device provisioning costs a 1024-bit keygen. *)
let env = lazy (Sim.make_env ~seed:"test-sim" ())

let run mode ?(record_bytes = 1024) ?(records = 12) () =
  Sim.run_write_burst (Lazy.force env) ~mode ~record_bytes ~records ()

(* ---------- workload ---------- *)

let test_record_splitting () =
  let rng = Drbg.create ~seed:"wl" in
  Alcotest.(check int) "one block" 1 (List.length (Workload.record rng ~bytes:1024));
  Alcotest.(check int) "64k exactly one block" 1 (List.length (Workload.record rng ~bytes:65536));
  let blocks = Workload.record rng ~bytes:200_000 in
  Alcotest.(check int) "200k split" 4 (List.length blocks);
  Alcotest.(check int) "sizes add up" 200_000 (List.fold_left (fun a b -> a + String.length b) 0 blocks);
  Alcotest.(check (list int)) "zero bytes = one empty block" [ 0 ]
    (List.map String.length (Workload.record rng ~bytes:0))

let test_mixed_trace_fractions () =
  let rng = Drbg.create ~seed:"wl2" in
  let ops =
    Workload.mixed_trace rng ~ops:1000 ~write_fraction:0.2 ~record_bytes:64
      ~policy:(Policy.of_regulation Policy.Sec17a4)
  in
  let writes =
    List.length
      (List.filter
         (function
           | Workload.Write _ -> true
           | Workload.Read _ -> false)
         ops)
  in
  Alcotest.(check bool) "roughly 20% writes" true (writes > 140 && writes < 260)

let test_short_retention_mix_bounds () =
  let rng = Drbg.create ~seed:"wl3" in
  let policies = Workload.short_retention_mix rng ~min_ns:100L ~max_ns:200L ~n:50 in
  Alcotest.(check int) "count" 50 (List.length policies);
  List.iter
    (fun p ->
      let r = p.Policy.retention_ns in
      Alcotest.(check bool) "in range" true (r >= 100L && r <= 200L))
    policies

(* ---------- Figure 1 orderings ---------- *)

let test_deferring_beats_sustained () =
  (* headline: deferred 512-bit signatures ~5x the strong-signature rate *)
  let strong = run Sim.mode_strong_host_hash () in
  let weak = run Sim.mode_weak_host_hash () in
  let ratio = weak.Sim.throughput_rps /. strong.Sim.throughput_rps in
  Alcotest.(check bool) "4x-6x speedup" true (ratio > 4.0 && ratio < 6.0)

let test_paper_absolute_ranges () =
  (* the paper's headline numbers for 1 KB records *)
  let strong = run Sim.mode_strong_host_hash () in
  Alcotest.(check bool) "sustained 400-500 rec/s" true
    (strong.Sim.throughput_rps > 400. && strong.Sim.throughput_rps < 500.);
  let weak = run Sim.mode_weak_host_hash () in
  Alcotest.(check bool) "deferred 2000-2500 rec/s" true
    (weak.Sim.throughput_rps > 2000. && weak.Sim.throughput_rps < 2500.)

let test_scpu_hash_mode_decays_with_size () =
  let small = run Sim.mode_strong_scpu_hash ~record_bytes:1024 () in
  let large = run Sim.mode_strong_scpu_hash ~record_bytes:262144 () in
  Alcotest.(check bool) "size hurts when SCPU hashes" true
    (large.Sim.throughput_rps < small.Sim.throughput_rps /. 3.)

let test_host_hash_mode_size_independent () =
  let small = run Sim.mode_strong_host_hash ~record_bytes:1024 () in
  let large = run Sim.mode_strong_host_hash ~record_bytes:262144 () in
  let ratio = large.Sim.throughput_rps /. small.Sim.throughput_rps in
  Alcotest.(check bool) "SCPU-side cost flat" true (ratio > 0.95 && ratio <= 1.05)

let test_hmac_mode_not_scpu_bound () =
  let m = run Sim.mode_mac_host_hash () in
  Alcotest.(check bool) "scpu not the bottleneck" true (m.Sim.bottleneck <> "scpu");
  let strong = run Sim.mode_strong_host_hash () in
  Alcotest.(check bool) "far above signature modes" true
    (m.Sim.throughput_rps > 3. *. strong.Sim.throughput_rps)

let test_deferred_work_paid_later () =
  let weak = run Sim.mode_weak_host_hash () in
  Alcotest.(check int) "queue drained in idle" 0 weak.Sim.deferred_after_idle;
  Alcotest.(check bool) "idle strengthening costs SCPU time" true (weak.Sim.idle_scpu_s > 0.);
  let strong = run Sim.mode_strong_host_hash () in
  Alcotest.(check bool) "strong mode defers almost nothing" true
    (strong.Sim.idle_scpu_s < weak.Sim.idle_scpu_s /. 2.)

(* ---------- I/O bottleneck (§5 closing claim) ---------- *)

let test_io_becomes_bottleneck () =
  let rows = Sim.io_bottleneck (Lazy.force env) ~record_bytes:1024 () in
  let fast = List.assoc 0.0 rows in
  Alcotest.(check string) "no-latency disk: WORM layer bound" "scpu" fast.Sim.bottleneck;
  let slow = List.assoc 3.5 rows in
  Alcotest.(check string) "enterprise disk: I/O bound" "disk" slow.Sim.bottleneck;
  Alcotest.(check bool) "throughput collapses with seek" true
    (slow.Sim.throughput_rps < fast.Sim.throughput_rps)

(* ---------- ablation: window vs Merkle ---------- *)

let test_window_vs_merkle_ablation () =
  let rows = Sim.window_vs_merkle (Lazy.force env) ~ns:[ 256; 4096; 65536 ] in
  (* window cost flat in n *)
  let w = List.map (fun r -> r.Sim.window_scpu_us_per_update) rows in
  (match w with
  | [ a; b; c ] ->
      Alcotest.(check bool) "flat window cost" true
        (abs_float (a -. c) /. a < 0.05 && abs_float (a -. b) /. a < 0.05)
  | _ -> Alcotest.fail "rows");
  (* merkle hash count grows logarithmically *)
  let hashes = List.map (fun r -> r.Sim.merkle_hashes_per_update) rows in
  match hashes with
  | [ h256; h4096; h65536 ] ->
      Alcotest.(check bool) "log growth" true (h256 < h4096 && h4096 < h65536);
      (* tree capacity rounds 65536 + sample up to 2^17: 18 hashes/update *)
      Alcotest.(check (float 0.6)) "log2(131072)+1" 18. h65536
  | _ -> Alcotest.fail "rows"

(* ---------- read-dominated loads (§4.1) ---------- *)

let test_reads_cost_no_scpu () =
  let rows = Sim.read_mix (Lazy.force env) ~ops:100 ~record_bytes:1024 () in
  let at f = List.find (fun r -> r.Sim.write_fraction = f) rows in
  Alcotest.(check (float 0.001)) "read-only load: zero SCPU" 0. (at 0.0).Sim.scpu_us_per_op;
  Alcotest.(check string) "read-only load runs at disk speed" "disk" (at 0.0).Sim.mix_bottleneck;
  (* SCPU cost per op grows with the write fraction *)
  Alcotest.(check bool) "monotone in write fraction" true
    ((at 0.1).Sim.scpu_us_per_op < (at 0.5).Sim.scpu_us_per_op
    && (at 0.5).Sim.scpu_us_per_op < (at 1.0).Sim.scpu_us_per_op);
  (* a 10%-write mix sustains far more ops than write-only *)
  Alcotest.(check bool) "read-heavy is much faster" true ((at 0.1).Sim.ops_per_sec > 2. *. (at 1.0).Sim.ops_per_sec)

(* ---------- multi-SCPU scaling (§5 closing claim) ---------- *)

let test_multi_scpu_scaling () =
  let rows =
    Sim.multi_scpu_scaling ~strong_bits:512 ~records:48 ~seed:"test" ~scpus_list:[ 1; 2; 4 ] ()
  in
  match rows with
  | [ r1; r2; r4 ] ->
      Alcotest.(check (float 0.01)) "baseline speedup 1" 1.0 r1.Sim.speedup;
      Alcotest.(check bool) "2 scpus near 2x" true (r2.Sim.speedup > 1.8 && r2.Sim.speedup <= 2.05);
      Alcotest.(check bool) "4 scpus near 4x" true (r4.Sim.speedup > 3.5 && r4.Sim.speedup <= 4.1);
      Alcotest.(check string) "still scpu-bound at 4" "scpu" r4.Sim.scaling_bottleneck
  | _ -> Alcotest.fail "rows"

(* ---------- O(1) crypto-erasure ---------- *)

let test_tenant_erasure_flat () =
  (* three orders of magnitude, scaled down to test size; the workload
     itself gates cert verification, erased verdicts, and the bystander
     fingerprint, so reaching the rows means those held *)
  let rows = Sim.tenant_erasure (Lazy.force env) ~volumes:[ 2; 20; 200; 2_000 ] ~record_bytes:64 () in
  match rows with
  | [ r1; _; _; r4 ] as rows ->
      let erase r = r.Sim.erase_scpu_us +. r.Sim.erase_host_us in
      let lo = List.fold_left (fun acc r -> Float.min acc (erase r)) infinity rows in
      let hi = List.fold_left (fun acc r -> Float.max acc (erase r)) 0. rows in
      Alcotest.(check bool) "erasure cost is flat across 3 orders" true (hi <= 1.5 *. lo);
      (* the shred baseline grows with the data, erasure does not *)
      Alcotest.(check bool) "shred baseline is linear" true
        (r4.Sim.shred_disk_us > 100. *. r1.Sim.shred_disk_us);
      Alcotest.(check bool) "erasure beats shredding at volume" true (erase r4 < r4.Sim.shred_disk_us)
  | _ -> Alcotest.fail "rows"

(* ---------- storage reduction & burst sustainability ---------- *)

let test_storage_reduction_shape () =
  let rows = Sim.storage_reduction (Lazy.force env) ~records:200 ~long_lived_every:20 () in
  match rows with
  | [ live; proofs; compacted ] ->
      Alcotest.(check int) "all records live" 200 live.Sim.entries;
      (* proofs are much smaller than VRDs... *)
      Alcotest.(check bool) "proofs shrink the table" true (proofs.Sim.vrdt_bytes < live.Sim.vrdt_bytes);
      (* ...and compaction expels nearly all of them *)
      Alcotest.(check int) "only long-lived entries remain" 10 compacted.Sim.entries;
      Alcotest.(check bool) "windows exist" true (compacted.Sim.windows > 0);
      Alcotest.(check bool) "order-of-magnitude reduction" true
        (compacted.Sim.vrdt_bytes * 5 < proofs.Sim.vrdt_bytes)
  | _ -> Alcotest.fail "rows"

let test_burst_sustainability_shape () =
  let rows = Sim.burst_sustainability () in
  let at r = List.find (fun x -> x.Sim.arrival_rps = r) rows in
  (* at or below the sustained rate the lifetime is the only bound *)
  Alcotest.(check (float 0.01)) "sustained rate: full lifetime" 120. (at 424.).Sim.max_burst_min;
  Alcotest.(check (float 0.01)) "100/s: full lifetime" 120. (at 100.).Sim.max_burst_min;
  (* at the paper's burst rate the repayment bound binds *)
  let headline = (at 2096.).Sim.max_burst_min in
  Alcotest.(check bool) "2096/s bounded by repayment" true (headline > 20. && headline < 30.);
  Alcotest.(check bool) "monotone decreasing" true ((at 4000.).Sim.max_burst_min < headline)

(* ---------- adaptive day (§4.3 controller end to end) ---------- *)

let test_adaptive_day () =
  let rows = Sim.adaptive_day (Lazy.force env) () in
  Alcotest.(check int) "four phases" 4 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check int) (r.Sim.phase ^ ": nothing overdue") 0 r.Sim.overdue_after;
      Alcotest.(check int)
        (r.Sim.phase ^ ": counts add up")
        r.Sim.writes
        (r.Sim.strong + r.Sim.weak + r.Sim.mac))
    rows;
  let phase name = List.find (fun r -> r.Sim.phase = name) rows in
  (* trickles run strong; bursts defer; the flood reaches MAC witnessing *)
  Alcotest.(check int) "trickle all strong" 0 ((phase "lunch trickle").Sim.weak + (phase "lunch trickle").Sim.mac);
  Alcotest.(check bool) "opening burst defers" true ((phase "opening burst").Sim.weak > 0);
  Alcotest.(check bool) "closing flood hits mac" true ((phase "closing flood").Sim.mac > 0)

(* ---------- Table 2 regeneration ---------- *)

let test_table2_rows_complete () =
  let rows = Sim.table2 () in
  Alcotest.(check int) "six rows" 6 (List.length rows);
  let ops = List.map (fun r -> r.Sim.operation) rows in
  Alcotest.(check bool) "has rsa rows" true (List.exists (fun o -> o = "RSA sig, 1024 bits") ops);
  Alcotest.(check bool) "has hash rows" true (List.exists (fun o -> o = "SHA-1, 64 KB blocks") ops);
  Alcotest.(check bool) "has dma row" true (List.exists (fun o -> o = "DMA transfer, end-to-end") ops)

let suite =
  [
    ("workload record splitting", `Quick, test_record_splitting);
    ("workload mixed trace", `Quick, test_mixed_trace_fractions);
    ("workload retention mix", `Quick, test_short_retention_mix_bounds);
    ("Fig1: deferring beats sustained ~5x", `Quick, test_deferring_beats_sustained);
    ("Fig1: paper absolute ranges", `Quick, test_paper_absolute_ranges);
    ("Fig1: scpu-hash decays with size", `Quick, test_scpu_hash_mode_decays_with_size);
    ("Fig1: host-hash size-independent", `Quick, test_host_hash_mode_size_independent);
    ("Fig1: hmac mode bus-limited", `Quick, test_hmac_mode_not_scpu_bound);
    ("deferred work paid in idle", `Quick, test_deferred_work_paid_later);
    ("I/O becomes the bottleneck", `Quick, test_io_becomes_bottleneck);
    ("ablation window vs merkle", `Quick, test_window_vs_merkle_ablation);
    ("multi-SCPU scaling", `Quick, test_multi_scpu_scaling);
    ("reads cost no SCPU", `Quick, test_reads_cost_no_scpu);
    ("tenant erasure is O(1)", `Quick, test_tenant_erasure_flat);
    ("storage reduction", `Quick, test_storage_reduction_shape);
    ("burst sustainability", `Quick, test_burst_sustainability_shape);
    ("adaptive day", `Quick, test_adaptive_day);
    ("table 2 rows", `Quick, test_table2_rows_complete);
  ]

let () = Alcotest.run "worm_sim" [ ("sim", suite) ]
