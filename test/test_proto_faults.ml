(* The transport fault model: every Faulty mode swept against read,
   audit_sweep, and run_remote_audit must yield verdicts identical to a
   clean transport once retries succeed, degrade to unproven absence
   (never an exception) once they exhaust, and resume a mid-sweep audit
   from the last good cursor after a crash. Plus server totality and
   idempotence under adversarial and replayed requests. *)

open Worm_core
open Worm_testkit.Testkit
module Message = Worm_proto.Message
module Server = Worm_proto.Server
module Faulty = Worm_proto.Faulty
module Netsim = Worm_proto.Netsim
module Remote_client = Worm_proto.Remote_client

(* A store exercising every proof shape: a deleted below-base region, a
   collapsed window behind a live anchor, live records, and the open
   region above the current bound. *)
let proof_shape_env () =
  let env = fresh_env () in
  ignore (write_n env ~retention_s:10. 3);
  let anchor = write env ~policy:(short_policy ~retention_s:10_000. ()) ~blocks:[ "anchor" ] () in
  ignore (write_n env ~retention_s:10. 3);
  let live = List.init 3 (fun i -> write env ~policy:(short_policy ~retention_s:10_000. ()) ~blocks:[ Printf.sprintf "live-%d" i ] ()) in
  ignore (expire_all env ~after_s:20.);
  Worm.idle_tick env.store;
  ignore (Worm.compact_windows env.store);
  Worm.heartbeat env.store;
  let server = Server.create env.store in
  (env, Server.handle_bytes server, anchor, List.nth live 2)

let connect_exn ?retry ?netsim env transport =
  match Remote_client.connect ~ca:(ca_pub ()) ~clock:env.clock ?retry ?netsim transport with
  | Ok rc -> rc
  | Error e -> Alcotest.fail e

let verdict_names results = List.map (fun (sn, v) -> (sn, Client.verdict_name v)) results

let audit_fingerprint (a : Remote_client.remote_audit) =
  ( a.Remote_client.scanned,
    a.Remote_client.skipped_below_base,
    verdict_names a.Remote_client.violations,
    a.Remote_client.resume )

(* ---------- the fault matrix ---------- *)

let matrix_modes =
  [
    ("drop", [ Faulty.Drop 0.25 ]);
    ("garble", [ Faulty.Garble 0.25 ]);
    ("truncate", [ Faulty.Truncate 0.25 ]);
    ("duplicate", [ Faulty.Duplicate 0.25 ]);
    ("delay", [ Faulty.Delay { p = 0.25; ns = 2_000_000L } ]);
    ("raise", [ Faulty.Raise 0.25 ]);
    ("crash", [ Faulty.Crash { after = 5; down_for = 2 } ]);
    ("storm", [ Faulty.Drop 0.1; Faulty.Garble 0.1; Faulty.Truncate 0.1; Faulty.Duplicate 0.1 ]);
  ]

(* Deep enough that no deterministic schedule at these rates outlasts
   it; the DRBG seeds make each matrix run exactly reproducible. *)
let generous = { Remote_client.default_retry with attempts = 8; verify_retries = 6 }

let test_fault_matrix () =
  let env, honest, anchor, top = proof_shape_env () in
  let clean = connect_exn env honest in
  let clean_read = Client.verdict_name (Remote_client.read clean anchor) in
  let clean_sweep = verdict_names (Remote_client.audit_sweep clean ~lo:Serial.first ~hi:top) in
  let clean_audit = audit_fingerprint (Remote_client.run_remote_audit_to_completion ~batch:4 clean) in
  List.iter
    (fun (name, faults) ->
      let faulty = Faulty.create ~seed:("matrix|" ^ name) ~faults honest in
      let rc = connect_exn ~retry:generous env (Faulty.transport faulty) in
      (match Remote_client.read rc anchor with
      | v -> Alcotest.(check string) (name ^ ": read verdict") clean_read (Client.verdict_name v)
      | exception e -> Alcotest.fail (name ^ ": read raised " ^ Printexc.to_string e));
      (match Remote_client.audit_sweep rc ~lo:Serial.first ~hi:top with
      | results ->
          Alcotest.(check bool) (name ^ ": sweep verdicts") true (verdict_names results = clean_sweep)
      | exception e -> Alcotest.fail (name ^ ": sweep raised " ^ Printexc.to_string e));
      (match Remote_client.run_remote_audit_to_completion ~batch:4 rc with
      | audit ->
          Alcotest.(check bool) (name ^ ": full audit") true (audit_fingerprint audit = clean_audit)
      | exception e -> Alcotest.fail (name ^ ": audit raised " ^ Printexc.to_string e)))
    matrix_modes

let test_exhausted_retries_degrade_to_verdict () =
  let env, honest, anchor, top = proof_shape_env () in
  (* the handshake passes, then every reply is swallowed: retries
     exhaust and every path must answer with unproven absence *)
  let calls = ref 0 in
  let dies_after_hello req =
    incr calls;
    if !calls <= 1 then honest req else raise (Faulty.Injected "wire gone")
  in
  let rc = connect_exn env dies_after_hello in
  (match Remote_client.read rc anchor with
  | Client.Violation [ Client.Absence_unproven ] -> ()
  | v -> Alcotest.fail ("read: " ^ Client.verdict_name v)
  | exception e -> Alcotest.fail ("read raised: " ^ Printexc.to_string e));
  (match Remote_client.audit_sweep rc ~lo:Serial.first ~hi:top with
  | results ->
      List.iter
        (fun (_, v) ->
          match v with
          | Client.Violation [ Client.Absence_unproven ] -> ()
          | v -> Alcotest.fail ("sweep row: " ^ Client.verdict_name v))
        results
  | exception e -> Alcotest.fail ("sweep raised: " ^ Printexc.to_string e));
  let stats = Remote_client.transport_stats rc in
  Alcotest.(check bool) "every retry actually attempted" true
    (stats.Remote_client.attempts > stats.Remote_client.requests);
  Alcotest.(check bool) "timeout + backoff wait charged" true
    (Int64.compare stats.Remote_client.waited_ns 0L > 0)

let test_backoff_grows_and_is_virtual () =
  let env, honest, _, _ = proof_shape_env () in
  let net = Netsim.create () in
  let dead _ = raise (Faulty.Injected "down") in
  let retry =
    { Remote_client.default_retry with attempts = 5; attempt_timeout_ns = 0L; jitter = 0. }
  in
  (match Remote_client.connect ~ca:(ca_pub ()) ~clock:env.clock ~retry ~netsim:net dead with
  | Ok _ -> Alcotest.fail "connected over a dead wire"
  | Error _ -> ());
  (* 4 waits of 1, 2, 4, 8 ms between the 5 attempts *)
  Alcotest.(check int64) "exponential backoff charged to the netsim ledger" 15_000_000L
    (Netsim.elapsed_ns net);
  ignore honest

(* ---------- resumable audits ---------- *)

let test_crash_resumes_from_cursor () =
  let env, honest, _, _ = proof_shape_env () in
  let clean = connect_exn env honest in
  let reference = Remote_client.run_remote_audit ~batch:4 clean in
  Alcotest.(check bool) "reference run is complete and clean" true
    (reference.Remote_client.resume = None && reference.Remote_client.violations = []);
  (* an outage longer than one roundtrip's retry budget *)
  let faulty = Faulty.create ~seed:"resume|crash" ~faults:[ Faulty.Crash { after = 3; down_for = 10 } ] honest in
  let rc =
    connect_exn ~retry:{ Remote_client.default_retry with attempts = 2 } env (Faulty.transport faulty)
  in
  let first = Remote_client.run_remote_audit ~batch:4 rc in
  let cursor =
    match first.Remote_client.resume with
    | Some c -> c
    | None -> Alcotest.fail "outage did not interrupt the sweep"
  in
  Alcotest.(check bool) "interrupted past the first slice" true (Serial.( > ) cursor Serial.first);
  Alcotest.(check int) "a dropped slice is not a violation" 0 (List.length first.Remote_client.violations);
  (* resume from the handed-back cursor (transport recovers mid-way) *)
  let rec resume cursor scanned skipped trips =
    let r = Remote_client.run_remote_audit ~batch:4 ~cursor rc in
    let scanned = scanned + r.Remote_client.scanned in
    let skipped = Int64.add skipped r.Remote_client.skipped_below_base in
    let trips = trips + r.Remote_client.round_trips in
    match r.Remote_client.resume with
    | Some c ->
        Alcotest.(check bool) "no false flags while down" true (r.Remote_client.violations = []);
        resume c scanned skipped trips
    | None -> (r, scanned, skipped, trips)
  in
  let last, scanned, skipped, _ = resume cursor first.Remote_client.scanned first.Remote_client.skipped_below_base 0 in
  Alcotest.(check int) "combined runs scanned the whole space" reference.Remote_client.scanned scanned;
  Alcotest.(check int64) "below-base region not re-walked" reference.Remote_client.skipped_below_base skipped;
  Alcotest.(check int) "clean at the end" 0 (List.length last.Remote_client.violations)

let test_to_completion_merges_runs () =
  let env, honest, _, _ = proof_shape_env () in
  let clean = connect_exn env honest in
  let reference = Remote_client.run_remote_audit_to_completion ~batch:4 clean in
  let faulty = Faulty.create ~seed:"resume|auto" ~faults:[ Faulty.Crash { after = 4; down_for = 6 } ] honest in
  let rc =
    connect_exn ~retry:{ Remote_client.default_retry with attempts = 3 } env (Faulty.transport faulty)
  in
  let merged = Remote_client.run_remote_audit_to_completion ~batch:4 rc in
  Alcotest.(check bool) "merged audit completes" true (merged.Remote_client.resume = None);
  Alcotest.(check int) "same coverage" reference.Remote_client.scanned merged.Remote_client.scanned;
  Alcotest.(check int) "no false flags" 0 (List.length merged.Remote_client.violations);
  (* a wire that dies right after the handshake and never comes back:
     bounded stalls, cursor handed back *)
  let calls = ref 0 in
  let dies_after_hello req =
    incr calls;
    if !calls <= 1 then honest req else raise (Faulty.Injected "gone")
  in
  let dead_rc = connect_exn ~retry:Remote_client.no_retry env dies_after_hello in
  let stalled = Remote_client.run_remote_audit_to_completion ~max_stalls:1 dead_rc in
  Alcotest.(check bool) "dead wire: incomplete, resumable, nothing flagged" true
    (stalled.Remote_client.resume = Some Serial.first && stalled.Remote_client.violations = [])

(* ---------- server totality & idempotence ---------- *)

let test_server_idempotent_under_replay () =
  let env, honest, anchor, top = proof_shape_env () in
  ignore env;
  let requests =
    [
      Message.Hello;
      Message.Read anchor;
      Message.Read (Serial.of_int 999);
      Message.Read_many (Serial.range Serial.first top);
      Message.Audit_slice { cursor = Serial.first; max = 4 };
      Message.Audit_slice { cursor = top; max = 4 };
    ]
  in
  List.iter
    (fun r ->
      let bytes = Message.encode_request r in
      let first = honest bytes in
      let replay = honest bytes in
      Alcotest.(check string) ("replay identical: " ^ Message.describe_request r) first replay)
    requests

(* The heartbeat hoist: Audit_slice dispatch no longer mutates the
   store behind the caller's back. handle_bytes heals staleness once in
   refresh, then replays are byte-identical even across a clock
   advance, with zero further SCPU signatures. *)
let test_audit_slice_replay_signs_once () =
  let env, honest, _, _ = proof_shape_env () in
  let bytes = Message.encode_request (Message.Audit_slice { cursor = Serial.first; max = 4 }) in
  let first = honest bytes in
  let signed = (Device.stats env.device).Device.sign_calls in
  Clock.advance env.clock (Clock.ns_of_sec 1.);
  Alcotest.(check string) "replay identical across clock advance" first (honest bytes);
  Alcotest.(check string) "and again" first (honest bytes);
  Alcotest.(check int) "replays consumed no SCPU signatures" signed
    (Device.stats env.device).Device.sign_calls

let test_server_total_on_adversarial_bytes () =
  let env, honest, _, _ = proof_shape_env () in
  ignore env;
  (* hand-picked nasties: truncations and mutations of a valid request *)
  let valid = Message.encode_request (Message.Audit_slice { cursor = Serial.first; max = 4 }) in
  let nasties =
    [ ""; "\xff"; "\x03"; String.sub valid 0 (String.length valid - 1); valid ^ "\x00"; String.map (fun _ -> '\xff') valid ]
  in
  List.iter
    (fun bytes ->
      match honest bytes with
      | reply -> begin
          match Message.decode_response reply with
          | Ok _ -> ()
          | Error e -> Alcotest.fail ("server emitted undecodable bytes: " ^ e)
        end
      | exception e -> Alcotest.fail ("server raised on adversarial input: " ^ Printexc.to_string e))
    nasties

(* One shared fixture: 200 random strings against the same live server,
   which also exercises idempotence across interleaved garbage. *)
let prop_server_total =
  let honest = lazy (let _, h, _, _ = proof_shape_env () in h) in
  QCheck.Test.make ~name:"handle_bytes total and idempotent on random bytes" ~count:200 QCheck.string
    (fun s ->
      let honest = Lazy.force honest in
      match honest s with
      | r1 -> r1 = honest s
      | exception _ -> false)

(* ---------- the Faulty wrapper itself ---------- *)

let test_faulty_deterministic () =
  let echo req = req ^ "-reply" in
  let run () =
    let f = Faulty.create ~seed:"det" ~faults:[ Faulty.Drop 0.3; Faulty.Garble 0.3 ] echo in
    let out =
      List.init 40 (fun i ->
          match Faulty.transport f (Printf.sprintf "req-%d" i) with
          | reply -> reply
          | exception Faulty.Injected _ -> "<dropped>")
    in
    (out, Faulty.stats f)
  in
  let out1, stats1 = run () in
  let out2, stats2 = run () in
  Alcotest.(check bool) "same seed, same schedule" true (out1 = out2 && stats1 = stats2);
  Alcotest.(check bool) "faults actually fired" true (stats1.Faulty.dropped > 0 && stats1.Faulty.garbled > 0);
  Alcotest.(check int) "every call accounted" 40 stats1.Faulty.calls

let test_faulty_crash_window () =
  let echo req = req in
  let f = Faulty.create ~faults:[ Faulty.Crash { after = 2; down_for = 3 } ] echo in
  let results =
    List.init 8 (fun i ->
        match Faulty.transport f (string_of_int i) with
        | _ -> `Up
        | exception Faulty.Injected _ -> `Down)
  in
  Alcotest.(check bool) "calls 3-5 down, others up" true
    (results = [ `Up; `Up; `Down; `Down; `Down; `Up; `Up; `Up ]);
  let f2 = Faulty.create ~faults:[ Faulty.Delay { p = 1.0; ns = 7L } ] echo in
  ignore (Faulty.transport f2 "x");
  ignore (Faulty.transport f2 "y");
  Alcotest.(check int64) "delay accumulates" 14L (Faulty.injected_delay_ns f2);
  Alcotest.check_raises "bad probability rejected" (Invalid_argument "Faulty.create: probability outside [0, 1]")
    (fun () -> ignore (Faulty.create ~faults:[ Faulty.Drop 1.5 ] echo))

let suite =
  [
    ("fault matrix: verdicts identical under retries", `Quick, test_fault_matrix);
    ("exhausted retries degrade to a verdict", `Quick, test_exhausted_retries_degrade_to_verdict);
    ("backoff grows exponentially, charged virtually", `Quick, test_backoff_grows_and_is_virtual);
    ("crash resumes from last good cursor", `Quick, test_crash_resumes_from_cursor);
    ("to-completion merges resumed runs", `Quick, test_to_completion_merges_runs);
    ("server idempotent under replay", `Quick, test_server_idempotent_under_replay);
    ("audit-slice replay signs nothing", `Quick, test_audit_slice_replay_signs_once);
    ("server total on adversarial bytes", `Quick, test_server_total_on_adversarial_bytes);
    QCheck_alcotest.to_alcotest prop_server_total;
    ("faulty wrapper deterministic", `Quick, test_faulty_deterministic);
    ("faulty crash window and delay ledger", `Quick, test_faulty_crash_window);
  ]

let () = Alcotest.run "worm_proto_faults" [ ("proto-faults", suite) ]
