(* Content-addressed block sharing: §4.2's overlapping VRs ("popular
   email attachments ... stored only once"). *)

open Worm_core
open Worm_testkit.Testkit
module Dedup_store = Worm_core.Dedup_store
module Disk = Worm_simdisk.Disk
module Clock = Worm_simclock.Clock

let dedup_env () = fresh_env ~config:{ Worm.default_config with Worm.dedup = true } ()

(* ---------- the raw layer ---------- *)

let test_dedup_store_basics () =
  let disk = Disk.create ~latency:Disk.zero_latency () in
  let d = Dedup_store.create disk in
  let a1 = Dedup_store.store_block d "attachment" in
  let a2 = Dedup_store.store_block d "attachment" in
  let a3 = Dedup_store.store_block d "different" in
  Alcotest.(check int) "same content, same addr" a1 a2;
  Alcotest.(check bool) "different content, different addr" true (a1 <> a3);
  Alcotest.(check int) "refcount 2" 2 (Dedup_store.refcount d a1);
  Alcotest.(check int) "one physical copy" 2 (Disk.record_count disk);
  let s = Dedup_store.stats d in
  Alcotest.(check int) "unique" 2 s.Dedup_store.unique_blocks;
  Alcotest.(check int) "logical" 3 s.Dedup_store.logical_blocks

let test_store_sub_shares_with_store_block () =
  (* store_sub hashes the slice in place; it must land on the same
     physical block as store_block of the materialised substring. *)
  let disk = Disk.create ~latency:Disk.zero_latency () in
  let d = Dedup_store.create disk in
  let a = Dedup_store.store_block d "attachment" in
  let framed = "HDR|attachment|TRL" in
  let b = Dedup_store.store_sub d framed ~pos:4 ~len:10 in
  Alcotest.(check int) "slice dedups against whole" a b;
  Alcotest.(check int) "refcount 2" 2 (Dedup_store.refcount d a);
  Alcotest.(check int) "one physical copy" 1 (Disk.record_count disk);
  Alcotest.(check (option string)) "reads back the slice" (Some "attachment") (Dedup_store.read d b)

let test_dedup_release_semantics () =
  let disk = Disk.create ~latency:Disk.zero_latency () in
  let d = Dedup_store.create disk in
  let a = Dedup_store.store_block d "shared" in
  ignore (Dedup_store.store_block d "shared");
  (match Dedup_store.release d ~passes:1 a with
  | Dedup_store.Still_referenced 1 -> ()
  | _ -> Alcotest.fail "early free");
  Alcotest.(check (option string)) "still readable" (Some "shared") (Dedup_store.read d a);
  (match Dedup_store.release d ~passes:1 a with
  | Dedup_store.Freed -> ()
  | _ -> Alcotest.fail "not freed at zero refs");
  Alcotest.(check (option string)) "gone" None (Dedup_store.read d a);
  (match Dedup_store.release d ~passes:1 a with
  | Dedup_store.Absent -> ()
  | _ -> Alcotest.fail "release after free");
  (* shredded, not just dropped *)
  match Disk.Raw.residue disk a with
  | Some residue -> Alcotest.(check bool) "no plaintext residue" false (String.equal residue "shared")
  | None -> Alcotest.fail "no residue info"

let test_dedup_ratio () =
  let disk = Disk.create ~latency:Disk.zero_latency () in
  let d = Dedup_store.create disk in
  Alcotest.(check (float 0.001)) "empty ratio" 1.0 (Dedup_store.dedup_ratio d);
  for _ = 1 to 10 do
    ignore (Dedup_store.store_block d (String.make 1000 'x'))
  done;
  Alcotest.(check (float 0.001)) "10x sharing" 10.0 (Dedup_store.dedup_ratio d)

(* ---------- through the WORM store ---------- *)

let test_store_dedups_across_records () =
  let env = dedup_env () in
  let attachment = String.make 5000 'A' in
  let sn1 = write env ~blocks:[ "mail-1"; attachment ] () in
  let sn2 = write env ~blocks:[ "mail-2"; attachment ] () in
  (match Worm.dedup_stats env.store with
  | Some s ->
      Alcotest.(check int) "three unique blocks" 3 s.Dedup_store.unique_blocks;
      Alcotest.(check int) "four logical blocks" 4 s.Dedup_store.logical_blocks
  | None -> Alcotest.fail "dedup not enabled");
  (* both records remain fully verifiable *)
  check_verdict "first verifies" "valid-data" env sn1;
  check_verdict "second verifies" "valid-data" env sn2;
  (* and they physically share the attachment's address *)
  match (Vrdt.find (Worm.vrdt env.store) sn1, Vrdt.find (Worm.vrdt env.store) sn2) with
  | Some (Vrdt.Active v1), Some (Vrdt.Active v2) ->
      Alcotest.(check int) "shared block addr" (List.nth v1.Vrd.rdl 1) (List.nth v2.Vrd.rdl 1)
  | _ -> Alcotest.fail "records missing"

let test_shared_block_survives_one_deletion () =
  let env = dedup_env () in
  let attachment = String.make 5000 'A' in
  let sn_short = write env ~policy:(short_policy ~retention_s:10. ()) ~blocks:[ attachment ] () in
  let sn_long = write env ~policy:(short_policy ~retention_s:10_000. ()) ~blocks:[ attachment ] () in
  ignore (expire_all env ~after_s:20.);
  check_verdict "short-lived record deleted" "properly-deleted" env sn_short;
  (* the surviving record still reads and verifies: the shared block was
     only released, not shredded *)
  check_verdict "long-lived record intact" "valid-data" env sn_long;
  (* now expire the survivor; the block must be shredded for real *)
  let rd =
    match Vrdt.find (Worm.vrdt env.store) sn_long with
    | Some (Vrdt.Active v) -> List.hd v.Vrd.rdl
    | _ -> Alcotest.fail "missing"
  in
  ignore (expire_all env ~after_s:10_000.);
  check_verdict "survivor deleted too" "properly-deleted" env sn_long;
  Alcotest.(check bool) "block physically gone" false (Disk.Raw.exists env.disk rd)

let test_dedup_disabled_by_default () =
  let env = fresh_env () in
  ignore (write env ~blocks:[ "same" ] ());
  ignore (write env ~blocks:[ "same" ] ());
  Alcotest.(check bool) "no dedup stats" true (Worm.dedup_stats env.store = None);
  Alcotest.(check int) "two physical copies" 2 (Disk.record_count env.disk)

let test_tampering_shared_block_detected_on_all_holders () =
  let env = dedup_env () in
  let attachment = String.make 2000 'A' in
  let sn1 = write env ~blocks:[ attachment ] () in
  let sn2 = write env ~blocks:[ attachment ] () in
  let mallory = Adversary.create env.store in
  ignore (Adversary.tamper_record_data mallory sn1);
  (* one platter write corrupts the shared block: BOTH holders detect *)
  (match verdict env sn1 with
  | Client.Violation _ -> ()
  | v -> Alcotest.fail (Client.verdict_name v));
  match verdict env sn2 with
  | Client.Violation _ -> ()
  | v -> Alcotest.fail (Client.verdict_name v)

(* ---------- overlapping VRs by explicit reference (§4.2) ---------- *)

let test_write_shared_borrows_blocks () =
  let env = dedup_env () in
  let email = write env ~blocks:[ "mail body"; "attachment-bytes" ] () in
  (* a second VR: new cover note + the SAME attachment, by reference *)
  let digest =
    match
      Worm.write_shared env.store ~policy:(short_policy ())
        ~parts:[ Worm.Fresh "weekly digest"; Worm.Borrow (email, 1) ]
    with
    | Ok sn -> sn
    | Error e -> Alcotest.fail e
  in
  check_verdict "composite verifies" "valid-data" env digest;
  (match Worm.read env.store digest with
  | Proof.Found { blocks; _ } ->
      Alcotest.(check (list string)) "content" [ "weekly digest"; "attachment-bytes" ] blocks
  | r -> Alcotest.fail (Proof.describe r));
  (* physically shared: same address in both RDLs *)
  match (Vrdt.find (Worm.vrdt env.store) email, Vrdt.find (Worm.vrdt env.store) digest) with
  | Some (Vrdt.Active e), Some (Vrdt.Active d) ->
      Alcotest.(check int) "same physical block" (List.nth e.Vrd.rdl 1) (List.nth d.Vrd.rdl 1)
  | _ -> Alcotest.fail "records missing"

let test_write_shared_deletion_semantics () =
  let env = dedup_env () in
  let original = write env ~policy:(short_policy ~retention_s:10. ()) ~blocks:[ "shared blob" ] () in
  let borrower =
    match
      Worm.write_shared env.store
        ~policy:(short_policy ~retention_s:10_000. ())
        ~parts:[ Worm.Borrow (original, 0) ]
    with
    | Ok sn -> sn
    | Error e -> Alcotest.fail e
  in
  (* the original expires; the borrower keeps the block alive *)
  ignore (expire_all env ~after_s:20.);
  check_verdict "original deleted" "properly-deleted" env original;
  check_verdict "borrower intact" "valid-data" env borrower

let test_write_shared_validation () =
  let env = dedup_env () in
  let sn = write env ~blocks:[ "one block" ] () in
  (match Worm.write_shared env.store ~policy:(short_policy ()) ~parts:[ Worm.Borrow (sn, 5) ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "out-of-range borrow accepted");
  (match
     Worm.write_shared env.store ~policy:(short_policy ()) ~parts:[ Worm.Borrow (Serial.of_int 99, 0) ]
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "phantom borrow accepted");
  (* requires dedup *)
  let plain = fresh_env () in
  match Worm.write_shared plain.store ~policy:(short_policy ()) ~parts:[ Worm.Fresh "x" ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "write_shared without dedup accepted"

let prop_dedup_transparent =
  (* dedup on/off must be observationally identical through reads *)
  QCheck.Test.make ~name:"dedup transparent to reads" ~count:10
    QCheck.(small_list (string_of_size (QCheck.Gen.int_bound 200)))
    (fun payloads ->
      QCheck.assume (payloads <> []);
      let run dedup =
        let env = fresh_env ~config:{ Worm.default_config with Worm.dedup } () in
        let sns = List.map (fun p -> write env ~blocks:[ p ] ()) payloads in
        List.map
          (fun sn ->
            match Worm.read env.store sn with
            | Proof.Found { blocks; _ } -> String.concat "" blocks
            | r -> Proof.describe r)
          sns
      in
      run true = run false)

let suite =
  [
    ("dedup store basics", `Quick, test_dedup_store_basics);
    ("store_sub shares with store_block", `Quick, test_store_sub_shares_with_store_block);
    ("release semantics", `Quick, test_dedup_release_semantics);
    ("dedup ratio", `Quick, test_dedup_ratio);
    ("store dedups across records", `Quick, test_store_dedups_across_records);
    ("shared block survives one deletion", `Quick, test_shared_block_survives_one_deletion);
    ("dedup off by default", `Quick, test_dedup_disabled_by_default);
    ("shared-block tamper detected everywhere", `Quick, test_tampering_shared_block_detected_on_all_holders);
    ("write_shared borrows blocks", `Quick, test_write_shared_borrows_blocks);
    ("write_shared deletion semantics", `Quick, test_write_shared_deletion_semantics);
    ("write_shared validation", `Quick, test_write_shared_validation);
    QCheck_alcotest.to_alcotest prop_dedup_transparent;
  ]

let () = Alcotest.run "worm_dedup" [ ("dedup", suite) ]
