(* Merkle tree baseline: structure, proofs, update-cost accounting. *)

open Worm_crypto

let test_create_shape () =
  let t = Merkle.create ~capacity:5 in
  Alcotest.(check int) "rounded to power of two" 8 (Merkle.capacity t);
  Alcotest.(check int) "construction not charged" 0 (Merkle.hash_count t);
  let t1 = Merkle.create ~capacity:1 in
  Alcotest.(check int) "capacity 1" 1 (Merkle.capacity t1);
  Alcotest.check_raises "zero capacity" (Invalid_argument "Merkle.create: non-positive capacity") (fun () ->
      ignore (Merkle.create ~capacity:0))

let test_empty_roots_differ_from_filled () =
  let a = Merkle.create ~capacity:4 in
  let b = Merkle.create ~capacity:4 in
  Alcotest.(check string) "empty trees agree" (Merkle.root a) (Merkle.root b);
  Merkle.set b 0 "data";
  Alcotest.(check bool) "root moves on set" false (String.equal (Merkle.root a) (Merkle.root b))

let test_get_set () =
  let t = Merkle.create ~capacity:4 in
  Alcotest.(check (option string)) "absent" None (Merkle.get t 2);
  Merkle.set t 2 "hello";
  Alcotest.(check (option string)) "present" (Some "hello") (Merkle.get t 2);
  Merkle.set t 2 "world";
  Alcotest.(check (option string)) "overwritten" (Some "world") (Merkle.get t 2);
  Alcotest.check_raises "out of range" (Invalid_argument "Merkle: index out of range") (fun () ->
      Merkle.set t 4 "x")

let test_proof_verifies () =
  let t = Merkle.create ~capacity:8 in
  for i = 0 to 7 do
    Merkle.set t i (Printf.sprintf "leaf-%d" i)
  done;
  for i = 0 to 7 do
    let proof = Merkle.proof t i in
    Alcotest.(check int) "proof length = log2 cap" 3 (List.length proof);
    Alcotest.(check bool)
      (Printf.sprintf "leaf %d verifies" i)
      true
      (Merkle.verify ~root:(Merkle.root t) ~capacity:8 ~index:i ~leaf_data:(Printf.sprintf "leaf-%d" i)
         ~proof)
  done

let test_proof_rejections () =
  let t = Merkle.create ~capacity:8 in
  for i = 0 to 7 do
    Merkle.set t i (Printf.sprintf "leaf-%d" i)
  done;
  let root = Merkle.root t in
  let proof = Merkle.proof t 3 in
  Alcotest.(check bool) "wrong data" false (Merkle.verify ~root ~capacity:8 ~index:3 ~leaf_data:"leaf-4" ~proof);
  Alcotest.(check bool) "wrong index" false (Merkle.verify ~root ~capacity:8 ~index:4 ~leaf_data:"leaf-3" ~proof);
  Alcotest.(check bool) "wrong root" false
    (Merkle.verify ~root:(String.make 32 'x') ~capacity:8 ~index:3 ~leaf_data:"leaf-3" ~proof);
  Alcotest.(check bool) "truncated proof" false
    (Merkle.verify ~root ~capacity:8 ~index:3 ~leaf_data:"leaf-3" ~proof:(List.tl proof));
  (* Old proof and old root remain mutually consistent... *)
  Alcotest.(check bool) "old proof, old root still consistent" true
    (begin
       Merkle.set t 0 "changed";
       Merkle.verify ~root ~capacity:8 ~index:3 ~leaf_data:"leaf-3" ~proof
     end);
  (* ...but the old proof fails against the live root. *)
  Alcotest.(check bool) "stale proof vs new root" false
    (Merkle.verify ~root:(Merkle.root t) ~capacity:8 ~index:3 ~leaf_data:"leaf-3" ~proof)

let test_update_cost_logarithmic () =
  let cost capacity =
    let t = Merkle.create ~capacity in
    Merkle.reset_hash_count t;
    Merkle.set t 0 "x";
    Merkle.hash_count t
  in
  Alcotest.(check int) "cap 1" 1 (cost 1);
  Alcotest.(check int) "cap 8" 4 (cost 8);
  Alcotest.(check int) "cap 1024" 11 (cost 1024);
  Alcotest.(check int) "cap 65536" 17 (cost 65536)

let prop_random_fill_all_verify =
  QCheck.Test.make ~name:"random fill, all proofs verify" ~count:30
    QCheck.(pair (int_range 1 24) (small_list string))
    (fun (cap, leaves) ->
      let t = Merkle.create ~capacity:cap in
      let cap' = Merkle.capacity t in
      List.iteri (fun i leaf -> Merkle.set t (i mod cap') leaf) leaves;
      let ok = ref true in
      for i = 0 to cap' - 1 do
        match Merkle.get t i with
        | Some leaf ->
            if not (Merkle.verify ~root:(Merkle.root t) ~capacity:cap' ~index:i ~leaf_data:leaf ~proof:(Merkle.proof t i))
            then ok := false
        | None -> ()
      done;
      !ok)

let test_of_leaves_agrees_with_set () =
  (* Bulk construction must land on the same root and leaves as the
     incremental path, sequentially and over a domain pool, and bulk
     construction (like create) is not charged to the update counter. *)
  let leaves = Array.init 11 (fun i -> Printf.sprintf "leaf-%d" (i * i)) in
  let incremental = Merkle.create ~capacity:(Array.length leaves) in
  Array.iteri (fun i leaf -> Merkle.set incremental i leaf) leaves;
  let bulk = Merkle.of_leaves leaves in
  Alcotest.(check int) "capacity matches" (Merkle.capacity incremental) (Merkle.capacity bulk);
  Alcotest.(check string) "root matches incremental" (Merkle.root incremental) (Merkle.root bulk);
  Alcotest.(check int) "construction not charged" 0 (Merkle.hash_count bulk);
  Alcotest.(check (option string)) "leaf readable" (Some "leaf-100") (Merkle.get bulk 10);
  Alcotest.(check (option string)) "padding absent" None (Merkle.get bulk 15);
  let pool = Worm_util.Pool.create ~domains:2 () in
  let pooled = Merkle.of_leaves ~pool leaves in
  Worm_util.Pool.shutdown pool;
  Alcotest.(check string) "pooled root matches" (Merkle.root bulk) (Merkle.root pooled);
  Alcotest.(check bool) "proof from bulk tree verifies" true
    (Merkle.verify ~root:(Merkle.root bulk) ~capacity:(Merkle.capacity bulk) ~index:3
       ~leaf_data:leaves.(3) ~proof:(Merkle.proof bulk 3))

let suite =
  [
    ("create shape", `Quick, test_create_shape);
    ("of_leaves = incremental set", `Quick, test_of_leaves_agrees_with_set);
    ("root moves on set", `Quick, test_empty_roots_differ_from_filled);
    ("get/set", `Quick, test_get_set);
    ("proofs verify", `Quick, test_proof_verifies);
    ("bad proofs rejected", `Quick, test_proof_rejections);
    ("update cost is O(log n)", `Quick, test_update_cost_logarithmic);
    QCheck_alcotest.to_alcotest prop_random_fill_all_verify;
  ]

let () = Alcotest.run "worm_merkle" [ ("merkle", suite) ]
