(* Known-answer vectors (FIPS 180-4, RFC 2202/4231) and structural
   properties for SHA-1, SHA-256, HMAC and the chained hash. *)

open Worm_crypto
module Hex = Worm_util.Hex

let check_hex name expected actual = Alcotest.(check string) name expected (Hex.encode actual)

(* ---------- SHA-256 (FIPS vectors) ---------- *)

(* NIST 896-bit two-block message (FIPS 180-4 appendix): exercises the
   multi-block compression path with padding spilling into a third block. *)
let nist_896 =
  "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno"
  ^ "ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu"

let test_sha256_vectors () =
  check_hex "empty" "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855" (Sha256.digest "");
  check_hex "abc" "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad" (Sha256.digest "abc");
  check_hex "448-bit" "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (Sha256.digest "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  check_hex "896-bit" "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1" (Sha256.digest nist_896);
  check_hex "million a" "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Sha256.digest (String.make 1_000_000 'a'))

let test_sha1_vectors () =
  check_hex "empty" "da39a3ee5e6b4b0d3255bfef95601890afd80709" (Sha1.digest "");
  check_hex "abc" "a9993e364706816aba3e25717850c26c9cd0d89d" (Sha1.digest "abc");
  check_hex "448-bit" "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
    (Sha1.digest "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  check_hex "896-bit" "a49b2446a02c645bf419f995b67091253a04a259" (Sha1.digest nist_896);
  check_hex "million a" "34aa973cd4c4daa4f61eeb2bdbad27316534016f" (Sha1.digest (String.make 1_000_000 'a'))

(* Deterministic streaming checks: feed the 896-bit vector in pieces cut
   at odd offsets so every partial-block buffer state gets crossed
   (1-byte feeds, a cut mid-first-block, a cut one byte past the block
   boundary, and 7-byte strides that never align with 64). *)
let test_streaming_odd_offsets () =
  let feed_at_cuts feed ctx cuts =
    let n = String.length nist_896 in
    let cuts = List.sort_uniq compare (List.filter (fun c -> c > 0 && c < n) cuts) @ [ n ] in
    ignore
      (List.fold_left
         (fun start p ->
           feed ctx (String.sub nist_896 start (p - start));
           p)
         0 cuts)
  in
  let strides k = List.init (String.length nist_896 / k) (fun i -> (i + 1) * k) in
  let check256 name cuts =
    let ctx = Sha256.init () in
    feed_at_cuts Sha256.feed ctx cuts;
    check_hex name "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1" (Sha256.get ctx)
  in
  let check1 name cuts =
    let ctx = Sha1.init () in
    feed_at_cuts Sha1.feed ctx cuts;
    check_hex name "a49b2446a02c645bf419f995b67091253a04a259" (Sha1.get ctx)
  in
  List.iter
    (fun (name, cuts) ->
      check256 ("sha256 " ^ name) cuts;
      check1 ("sha1 " ^ name) cuts)
    [
      ("byte at a time", strides 1);
      ("7-byte strides", strides 7);
      ("cut mid-block", [ 37 ]);
      ("cut at 63/64/65", [ 63; 64; 65 ]);
      ("uneven trio", [ 1; 66; 111 ]);
    ]

(* Incremental feeding must agree with one-shot digestion regardless of
   chunking — this exercises the partial-block buffer paths. *)
let prop_incremental_agrees hash_init hash_feed hash_get hash_digest name =
  QCheck.Test.make ~name ~count:200
    QCheck.(pair string (small_list small_nat))
    (fun (s, cuts) ->
      let ctx = hash_init () in
      let n = String.length s in
      let positions = List.sort_uniq compare (List.map (fun c -> if n = 0 then 0 else c mod (n + 1)) cuts) in
      let rec feed_pieces start = function
        | [] -> hash_feed ctx (String.sub s start (n - start))
        | p :: rest when p >= start ->
            hash_feed ctx (String.sub s start (p - start));
            feed_pieces p rest
        | _ :: rest -> feed_pieces start rest
      in
      feed_pieces 0 positions;
      String.equal (hash_get ctx) (hash_digest s))

let prop_sha256_incremental = prop_incremental_agrees Sha256.init Sha256.feed Sha256.get Sha256.digest "sha256 incremental"
let prop_sha1_incremental = prop_incremental_agrees Sha1.init Sha1.feed Sha1.get Sha1.digest "sha1 incremental"

let test_ctx_reuse_rejected () =
  let ctx = Sha256.init () in
  Sha256.feed ctx "x";
  ignore (Sha256.get ctx);
  Alcotest.check_raises "feed after get" (Invalid_argument "Sha256.feed: context already finalized") (fun () ->
      Sha256.feed ctx "y");
  Alcotest.check_raises "second get" (Invalid_argument "Sha256.get: context already finalized") (fun () ->
      ignore (Sha256.get ctx));
  Alcotest.check_raises "feed_sub after get" (Invalid_argument "Sha256.feed_sub: context already finalized")
    (fun () -> Sha256.feed_sub ctx "abc" ~pos:0 ~len:1);
  Alcotest.check_raises "digest_into after get" (Invalid_argument "Sha256.get: context already finalized")
    (fun () -> Sha256.digest_into ctx (Bytes.create 32) ~pos:0);
  let ctx1 = Sha1.init () in
  Sha1.feed ctx1 "x";
  ignore (Sha1.get ctx1);
  Alcotest.check_raises "sha1 feed after get" (Invalid_argument "Sha1.feed: context already finalized")
    (fun () -> Sha1.feed ctx1 "y");
  Alcotest.check_raises "sha1 second get" (Invalid_argument "Sha1.get: context already finalized") (fun () ->
      ignore (Sha1.get ctx1))

(* ---------- Zero-copy entry points ---------- *)

let test_feed_sub_odd_splits () =
  (* Feed the 896-bit vector as substrings of a larger buffer, cut at
     prime strides so block boundaries never align with the slices. *)
  let padded = "PREFIX-" ^ nist_896 ^ "-SUFFIX" in
  let base = String.length "PREFIX-" in
  let n = String.length nist_896 in
  List.iter
    (fun stride ->
      let ctx = Sha256.init () in
      let ctx1 = Sha1.init () in
      let pos = ref 0 in
      while !pos < n do
        let len = min stride (n - !pos) in
        Sha256.feed_sub ctx padded ~pos:(base + !pos) ~len;
        Sha1.feed_sub ctx1 padded ~pos:(base + !pos) ~len;
        pos := !pos + len
      done;
      check_hex
        (Printf.sprintf "sha256 feed_sub stride %d" stride)
        "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1" (Sha256.get ctx);
      check_hex
        (Printf.sprintf "sha1 feed_sub stride %d" stride)
        "a49b2446a02c645bf419f995b67091253a04a259" (Sha1.get ctx1))
    [ 1; 3; 7; 61; 64; 67; 113 ]

let test_feed_sub_bounds () =
  let ctx = Sha256.init () in
  Alcotest.check_raises "negative pos" (Invalid_argument "Sha256.feed_sub: out of bounds") (fun () ->
      Sha256.feed_sub ctx "abc" ~pos:(-1) ~len:1);
  Alcotest.check_raises "negative len" (Invalid_argument "Sha256.feed_sub: out of bounds") (fun () ->
      Sha256.feed_sub ctx "abc" ~pos:0 ~len:(-1));
  Alcotest.check_raises "past end" (Invalid_argument "Sha256.feed_sub: out of bounds") (fun () ->
      Sha256.feed_sub ctx "abc" ~pos:2 ~len:2)

let test_digest_sub_and_into () =
  let s = "xyzabc012" in
  Alcotest.(check string) "digest_sub" (Sha256.digest "abc") (Sha256.digest_sub s ~pos:3 ~len:3);
  let out = Bytes.make 40 '\xff' in
  let ctx = Sha256.init () in
  Sha256.feed ctx "abc";
  Sha256.digest_into ctx out ~pos:4;
  Alcotest.(check string) "digest_into payload" (Sha256.digest "abc") (Bytes.sub_string out 4 32);
  Alcotest.(check string) "digest_into leaves margins" (String.make 4 '\xff') (Bytes.sub_string out 0 4);
  Alcotest.(check string) "digest_parts" (Sha256.digest "abcdef") (Sha256.digest_parts [ "ab"; ""; "cdef" ])

(* The production cores must agree with the retained reference
   implementation on arbitrary inputs, not just the FIPS vectors. *)
let prop_matches_reference =
  QCheck.Test.make ~name:"unsafe cores = reference implementation" ~count:300 QCheck.string (fun s ->
      String.equal (Sha256.digest s) (Worm_testkit.Ref_hash.Sha256.digest s)
      && String.equal (Sha1.digest s) (Worm_testkit.Ref_hash.Sha1.digest s))

let prop_digest_many_is_map =
  QCheck.Test.make ~name:"digest_many = map digest" ~count:50
    QCheck.(small_list string)
    (fun xs ->
      let inputs = Array.of_list xs in
      let expected = Array.map Sha256.digest inputs in
      let pool = Worm_util.Pool.create ~domains:2 () in
      let pooled = Sha256.digest_many ~pool inputs in
      let parts_pooled = Sha256.digest_parts_many ~pool (Array.map (fun x -> [ x; "" ]) inputs) in
      Worm_util.Pool.shutdown pool;
      Sha256.digest_many inputs = expected && pooled = expected && parts_pooled = expected)

(* ---------- HMAC (RFC 4231 / RFC 2202) ---------- *)

let test_hmac_sha256_vectors () =
  check_hex "rfc4231 case 1" "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (Hmac.sha256 ~key:(String.make 20 '\x0b') "Hi There");
  check_hex "rfc4231 case 2" "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (Hmac.sha256 ~key:"Jefe" "what do ya want for nothing?");
  check_hex "rfc4231 case 3" "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
    (Hmac.sha256 ~key:(String.make 20 '\xaa') (String.make 50 '\xdd'));
  check_hex "rfc4231 case 4" "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b"
    (Hmac.sha256
       ~key:(String.init 25 (fun i -> Char.chr (i + 1)))
       (String.make 50 '\xcd'));
  (* long key (hashed down) *)
  check_hex "rfc4231 case 6" "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
    (Hmac.sha256 ~key:(String.make 131 '\xaa') "Test Using Larger Than Block-Size Key - Hash Key First");
  (* long key AND long data *)
  check_hex "rfc4231 case 7" "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2"
    (Hmac.sha256 ~key:(String.make 131 '\xaa')
       ("This is a test using a larger than block-size key and a larger than block-size data. "
      ^ "The key needs to be hashed before being used by the HMAC algorithm."))

let test_hmac_zero_copy_agrees () =
  (* mac_parts over a split and mac_sub over a slice must match the
     one-shot mac of the equivalent contiguous string. *)
  let key = "zero-copy-key" in
  let msg = "The WORM device signs what it stores, not what it is shown." in
  Alcotest.(check string) "sha256_parts = sha256"
    (Hmac.sha256 ~key msg)
    (Hmac.sha256_parts ~key [ "The WORM device signs "; "what it stores, "; ""; "not what it is shown." ]);
  let padded = "<<<" ^ msg ^ ">>>" in
  Alcotest.(check string) "sha256_sub = sha256"
    (Hmac.sha256 ~key msg)
    (Hmac.sha256_sub ~key padded ~pos:3 ~len:(String.length msg))

let test_hmac_sha1_vectors () =
  check_hex "rfc2202 case 1" "b617318655057264e28bc0b6fb378c8ef146be00"
    (Hmac.sha1 ~key:(String.make 20 '\x0b') "Hi There");
  check_hex "rfc2202 case 2" "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79"
    (Hmac.sha1 ~key:"Jefe" "what do ya want for nothing?")

let test_hmac_verify () =
  let key = "secret" and msg = "payload" in
  let mac = Hmac.sha256 ~key msg in
  Alcotest.(check bool) "accepts" true (Hmac.verify_sha256 ~key ~msg ~mac);
  Alcotest.(check bool) "rejects wrong msg" false (Hmac.verify_sha256 ~key ~msg:"payloae" ~mac);
  Alcotest.(check bool) "rejects wrong key" false (Hmac.verify_sha256 ~key:"secre7" ~msg ~mac)

(* ---------- Chained hash ---------- *)

let test_chained_basic () =
  let a = Chained_hash.of_blocks [ "one"; "two" ] in
  let b = Chained_hash.add (Chained_hash.add Chained_hash.empty "one") "two" in
  Alcotest.(check bool) "incremental = batch" true (Chained_hash.equal a b);
  Alcotest.(check int) "32 bytes" 32 (String.length (Chained_hash.value a))

let test_chained_boundary_sensitive () =
  (* Length delimiting: moving a boundary must change the chain value. *)
  let a = Chained_hash.of_blocks [ "ab"; "c" ] in
  let b = Chained_hash.of_blocks [ "a"; "bc" ] in
  let c = Chained_hash.of_blocks [ "abc" ] in
  Alcotest.(check bool) "ab+c <> a+bc" false (Chained_hash.equal a b);
  Alcotest.(check bool) "ab+c <> abc" false (Chained_hash.equal a c);
  Alcotest.(check bool) "empty block matters" false
    (Chained_hash.equal (Chained_hash.of_blocks [ "x"; "" ]) (Chained_hash.of_blocks [ "x" ]))

let test_chained_add_sub () =
  (* add_sub on a slice must equal add of the materialised substring. *)
  let buf = "padding|block-payload|more" in
  let a = Chained_hash.add_sub Chained_hash.empty buf ~pos:8 ~len:13 in
  let b = Chained_hash.add Chained_hash.empty "block-payload" in
  Alcotest.(check bool) "add_sub = add of sub" true (Chained_hash.equal a b);
  Alcotest.check_raises "bad bounds"
    (Invalid_argument "Chained_hash.add_sub: out of bounds")
    (fun () -> ignore (Chained_hash.add_sub Chained_hash.empty buf ~pos:20 ~len:10))

let prop_chained_injective_on_order =
  QCheck.Test.make ~name:"chained hash order-sensitive" ~count:200
    QCheck.(pair (small_list string) (small_list string))
    (fun (xs, ys) ->
      if xs = ys then Chained_hash.(equal (of_blocks xs) (of_blocks ys))
      else not Chained_hash.(equal (of_blocks xs) (of_blocks ys)))

(* ---------- DRBG ---------- *)

let test_drbg_deterministic () =
  let a = Drbg.create ~seed:"seed-1" and b = Drbg.create ~seed:"seed-1" in
  Alcotest.(check string) "same seed, same stream" (Drbg.generate a 64) (Drbg.generate b 64);
  let c = Drbg.create ~seed:"seed-2" in
  Alcotest.(check bool) "different seed, different stream" false
    (String.equal (Drbg.generate (Drbg.create ~seed:"seed-1") 64) (Drbg.generate c 64))

let test_drbg_split_independent () =
  let parent = Drbg.create ~seed:"parent" in
  let c1 = Drbg.split parent ~label:"a" in
  let c2 = Drbg.split parent ~label:"b" in
  Alcotest.(check bool) "children differ" false (String.equal (Drbg.generate c1 32) (Drbg.generate c2 32))

let prop_drbg_int_below_in_range =
  QCheck.Test.make ~name:"int_below in range" ~count:300
    QCheck.(pair string (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let rng = Drbg.create ~seed in
      let v = Drbg.int_below rng bound in
      v >= 0 && v < bound)

let prop_drbg_nat_below_in_range =
  QCheck.Test.make ~name:"nat_below in range" ~count:100 QCheck.string (fun seed ->
      let rng = Drbg.create ~seed in
      let bound = Nat.add (Drbg.nat_bits rng 100) Nat.one in
      Nat.compare (Drbg.nat_below rng bound) bound < 0)

let test_drbg_nat_bits_width () =
  let rng = Drbg.create ~seed:"bits" in
  for _ = 1 to 50 do
    Alcotest.(check bool) "within width" true (Nat.bit_length (Drbg.nat_bits rng 65) <= 65)
  done

let suite =
  [
    ("sha256 FIPS vectors", `Quick, test_sha256_vectors);
    ("sha1 FIPS vectors", `Quick, test_sha1_vectors);
    ("streaming at odd offsets", `Quick, test_streaming_odd_offsets);
    ("context reuse rejected", `Quick, test_ctx_reuse_rejected);
    ("feed_sub odd splits", `Quick, test_feed_sub_odd_splits);
    ("feed_sub bounds", `Quick, test_feed_sub_bounds);
    ("digest_sub / digest_into", `Quick, test_digest_sub_and_into);
    ("hmac-sha256 RFC vectors", `Quick, test_hmac_sha256_vectors);
    ("hmac-sha1 RFC vectors", `Quick, test_hmac_sha1_vectors);
    ("hmac verify", `Quick, test_hmac_verify);
    ("hmac zero-copy entry points", `Quick, test_hmac_zero_copy_agrees);
    ("chained hash basics", `Quick, test_chained_basic);
    ("chained hash boundaries", `Quick, test_chained_boundary_sensitive);
    ("chained hash add_sub", `Quick, test_chained_add_sub);
    ("drbg determinism", `Quick, test_drbg_deterministic);
    ("drbg split independence", `Quick, test_drbg_split_independent);
    ("drbg nat_bits width", `Quick, test_drbg_nat_bits_width);
    QCheck_alcotest.to_alcotest prop_sha256_incremental;
    QCheck_alcotest.to_alcotest prop_sha1_incremental;
    QCheck_alcotest.to_alcotest prop_matches_reference;
    QCheck_alcotest.to_alcotest prop_digest_many_is_map;
    QCheck_alcotest.to_alcotest prop_chained_injective_on_order;
    QCheck_alcotest.to_alcotest prop_drbg_int_below_in_range;
    QCheck_alcotest.to_alcotest prop_drbg_nat_below_in_range;
  ]

let () = Alcotest.run "worm_hash" [ ("hash", suite) ]
